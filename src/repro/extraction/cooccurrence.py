"""Corpus-wide value co-occurrence statistics (paper §3.1).

The coherence of a column is judged by how often its values co-occur in *other*
columns of the corpus.  The :class:`CooccurrenceIndex` maps each (normalized) cell
value to the set of columns containing it, from which the PMI computations obtain
``p(u)``, ``p(v)`` and ``p(u, v)``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.corpus.corpus import TableCorpus
from repro.text.matching import normalize_value

__all__ = ["CooccurrenceIndex"]


class CooccurrenceIndex:
    """Inverted index from cell value to the identifiers of columns containing it."""

    def __init__(self) -> None:
        self._columns_by_value: dict[str, set[int]] = {}
        self._num_columns = 0

    # -- Construction -----------------------------------------------------------------
    def add_column(self, values: Iterable[str]) -> int:
        """Register one column's values; returns the column's integer identifier."""
        column_id = self._num_columns
        self._num_columns += 1
        for value in set(values):
            key = normalize_value(value)
            if not key:
                continue
            self._columns_by_value.setdefault(key, set()).add(column_id)
        return column_id

    @classmethod
    def from_corpus(cls, corpus: TableCorpus) -> "CooccurrenceIndex":
        """Build the index over every column of ``corpus``."""
        index = cls()
        for _, column in corpus.iter_columns():
            index.add_column(column.values)
        return index

    # -- Statistics --------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Total number of columns indexed (``N`` in the paper's formulas)."""
        return self._num_columns

    _EMPTY_POSTING: frozenset[int] = frozenset()

    def columns_containing(self, value: str) -> set[int] | frozenset[int]:
        """Return the set of column ids whose columns contain ``value``."""
        return self._columns_by_value.get(normalize_value(value), self._EMPTY_POSTING)

    def occurrence_count(self, value: str) -> int:
        """``|C(u)|`` — the number of columns containing ``value``."""
        return len(self.columns_containing(value))

    def cooccurrence_count(self, first: str, second: str) -> int:
        """``|C(u) ∩ C(v)|`` — the number of columns containing both values.

        The set intersection runs in C, replacing the seed's per-element Python
        membership loop.
        """
        return len(self.columns_containing(first) & self.columns_containing(second))

    def probability(self, value: str) -> float:
        """``p(u) = |C(u)| / N``."""
        if self._num_columns == 0:
            return 0.0
        return self.occurrence_count(value) / self._num_columns

    def joint_probability(self, first: str, second: str) -> float:
        """``p(u, v) = |C(u) ∩ C(v)| / N``."""
        if self._num_columns == 0:
            return 0.0
        return self.cooccurrence_count(first, second) / self._num_columns

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, str):
            return False
        return normalize_value(value) in self._columns_by_value

    def __len__(self) -> int:
        return len(self._columns_by_value)
