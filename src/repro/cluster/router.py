"""Scatter-gather router over sharded :class:`SynthesisDaemon` replicas.

The single-host serving ceiling is one :class:`~repro.serving.SynthesisDaemon`
over one full mapping index.  This module scales past it **without changing a
single answer**: a :class:`ClusterRouter` consistent-hashes the mapping pool
across N daemon replicas (each serving only its shard slice, cut by
:func:`~repro.cluster.sharding.cut_shard_artifacts`) and answers
autofill / autojoin / autocorrect batches by running the *unmodified*
application classes over a :class:`ScatterIndex` — an index facade whose
``lookup`` / ``lookup_pairs`` scatter ``cluster_lookup`` batches to a healthy
replica cover and merge the shard-local top-k lists.

Why the merge is exact (the cluster's serving contract):

1. Every mapping's match score is computed from that mapping's own value sets
   alone — no term in :meth:`MappingIndex.lookup` depends on the rest of the
   pool — so a shard replica computes the *same* score the full index would.
2. The full index stable-sorts by score over the pool order (ascending
   :func:`~repro.core.mapping.mapping_rank_key`), so its result order is
   exactly ``(-score, mapping_rank_key)``.
3. Any mapping in the global top-k ranks at least as high in every sub-pool
   that contains it, so it survives each shard's local top-k truncation as
   long as the queried replicas jointly cover every shard.

Sorting the union of shard answers by ``(-score, mapping_rank_key)``,
deduplicating by ``mapping_id`` (replicas overlap when ``replication > 1``),
and truncating to ``top_k`` therefore reproduces the single-index answer
byte-for-byte — the property ``tests/test_cluster_properties.py`` locks with
hypothesis against a sync :class:`MappingService` oracle.

Failover composes the existing fault-tolerance primitives: each replica gets
a :class:`~repro.faults.CircuitBreaker` (a failed scatter opens it; the
cover-picker routes around open breakers and closed daemons, and half-open
probes re-admit recovered replicas), and scatter rounds are re-attempted on a
:class:`~repro.faults.RetryPolicy` schedule against a recomputed cover.  With
``replication >= 2`` any single replica can die mid-stream and every shard is
still covered.  Rolling rollout re-cuts one replica's slice at a time and
waits for that daemon's generation tag to advance before touching the next.

Replicas need not share the router's process: ``transport="tcp"`` (or
``SynthesisConfig.cluster_transport``) spawns one ``python -m repro.net.server``
process per replica and talks :mod:`repro.net`'s framed binary protocol
through :class:`~repro.net.RemoteReplica` clients — the same duck-typed
``submit`` / ``apply_delta`` / ``health`` surface, so nothing in the scatter,
merge, failover, rollout, or delta logic knows which transport it runs on.
Each scatter attempt carries **one** deadline: the remaining budget is passed
to in-process submits and encoded into lookup frames alike, and replicas
re-enforce it at serve time, so a slow network can only shrink a batch's
budget — never let an expired ticket consume daemon work.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.applications.autocorrect import AutoCorrector
from repro.applications.autofill import AutoFiller
from repro.applications.autojoin import AutoJoiner
from repro.applications.index import MappingMatch
from repro.applications.service import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    LookupRequest,
    MappingService,
    ServedResponse,
    ServiceStats,
)
from repro.cluster.sharding import HashRing, cut_shard_artifacts, replica_shards
from repro.core.config import SynthesisConfig
from repro.core.mapping import mapping_rank_key
from repro.faults.breaker import CircuitBreaker
from repro.faults.retry import RetryPolicy
from repro.serving.daemon import DaemonStoppedError, SynthesisDaemon
from repro.text.matching import normalize_value

__all__ = [
    "ClusterError",
    "NoHealthyReplicaError",
    "ScatterIndex",
    "ClusterRouter",
    "ROUTER_REQUEST_KINDS",
]


#: The application batch kinds the router serves (raw ``cluster_lookup`` is
#: the router's *internal* transport kind, not a router entry point).
ROUTER_REQUEST_KINDS = ("autofill", "autojoin", "autocorrect")

#: Failover schedule: how many times one scatter is re-attempted against a
#: recomputed healthy cover before the failure reaches the request envelope.
DEFAULT_ROUTER_RETRY = RetryPolicy(attempts=2, base_seconds=0.01, max_seconds=0.25)


class ClusterError(RuntimeError):
    """A cluster-level serving failure (distinct from per-request errors)."""


class NoHealthyReplicaError(ClusterError):
    """No healthy replica set covers every shard right now."""


@dataclass
class _Replica:
    """One daemon replica plus the router-side state that guards it."""

    index: int
    daemon: SynthesisDaemon
    shards: frozenset[int]
    breaker: CircuitBreaker
    path: Path | None = None
    #: Scatters this replica served / failed (router-side view, lock-free
    #: monotonic counters — read for health reporting only).
    served: int = 0
    failed: int = 0


class ScatterIndex:
    """A :class:`MappingIndex` facade that scatter-gathers across replicas.

    Implements exactly the two entry points the application classes use —
    ``lookup`` and ``lookup_pairs`` — by forwarding each call as a
    ``cluster_lookup`` batch to a covering set of healthy replicas and
    merging the shard-local answers (see the module docstring for why the
    merge is exact).  Input validation mirrors :class:`MappingIndex`
    verbatim, so malformed requests produce byte-identical error envelopes
    without ever leaving the router.
    """

    def __init__(self, router: "ClusterRouter") -> None:
        self._router = router

    def __len__(self) -> int:
        return self._router.pool_size

    def lookup(
        self,
        values: Iterable[str],
        min_containment: float = 0.5,
        top_k: int = 5,
    ) -> list[MappingMatch]:
        if not 0.0 <= min_containment <= 1.0:
            raise ValueError(f"min_containment must be in [0, 1], got {min_containment}")
        values = list(values)
        normalized = [normalize_value(value) for value in values if value.strip()]
        if not normalized:
            return []
        return self._router._scatter(
            LookupRequest(
                op="values",
                values=tuple(values),
                min_containment=min_containment,
                top_k=top_k,
            )
        )

    def lookup_pairs(
        self,
        pairs: Iterable[tuple[str, str]],
        min_containment: float = 0.5,
        top_k: int = 5,
    ) -> list[MappingMatch]:
        pair_list = [(left, right) for left, right in pairs]
        if not pair_list:
            return []
        return self._router._scatter(
            LookupRequest(
                op="pairs",
                values=tuple(pair_list),
                min_containment=min_containment,
                top_k=top_k,
            )
        )


class _RouterService(MappingService):
    """The router's serving facade: real application objects, scattered index.

    Deliberately skips ``MappingService.__init__`` — the router holds no local
    mapping pool; its "index" is a :class:`ScatterIndex`.  Everything else —
    ``_serve_batch`` envelopes, per-request error isolation, stats recording,
    the ``autofill`` / ``autojoin`` / ``autocorrect`` entry points — is
    inherited verbatim, which is what makes router envelopes byte-identical
    to a single service's (same code, same order, same error strings).
    """

    def __init__(
        self,
        router: "ClusterRouter",
        *,
        min_containment: float = 0.5,
        min_example_agreement: float = 0.99,
        correction_containment: float = 0.6,
        source: str = "cluster",
    ) -> None:
        self.index = ScatterIndex(router)
        self.filler = AutoFiller(self.index, min_example_agreement=min_example_agreement)
        self.joiner = AutoJoiner(self.index, min_containment=min_containment)
        self.corrector = AutoCorrector(
            self.index, min_containment=correction_containment
        )
        self.serving_kwargs = {
            "min_containment": min_containment,
            "min_example_agreement": min_example_agreement,
            "correction_containment": correction_containment,
        }
        self.stats = ServiceStats(source=source, index_size=len(self.index))


class ClusterRouter:
    """Routes application batches across sharded daemon replicas.

    Construct with :meth:`from_artifact` (cuts shard artifacts, starts one
    watching daemon per replica) or directly from pre-built daemons whose
    pools partition the oracle pool by ``ring`` placement.

    The router is thread-safe: any number of client threads may call
    :meth:`autofill` / :meth:`autojoin` / :meth:`autocorrect` / :meth:`serve`
    concurrently — each per-request lookup scatters independently, and
    per-replica circuit breakers plus the retry schedule handle replicas
    failing at any point in the stream.
    """

    def __init__(
        self,
        daemons: Sequence[SynthesisDaemon],
        ring: HashRing,
        *,
        replication: int = 1,
        paths: Sequence[Path] | None = None,
        shard_dir: Path | None = None,
        pool_size: int = 0,
        prefer_curated: bool = True,
        compress: bool = True,
        request_timeout: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        breaker_cooldown: float = 1.0,
        transport: str = "inproc",
        processes: Sequence[object] | None = None,
        **service_kwargs,
    ) -> None:
        # ``daemons`` is duck-typed: in-process ``SynthesisDaemon`` objects or
        # ``repro.net.RemoteReplica`` clients — both expose the same submit /
        # apply_delta / health / close surface the router programs against.
        if len(daemons) != ring.num_shards:
            raise ValueError(
                f"need one replica per shard: got {len(daemons)} daemons "
                f"for {ring.num_shards} shards"
            )
        if transport not in ("inproc", "tcp"):
            raise ValueError(
                f"transport must be 'inproc' or 'tcp', got {transport!r}"
            )
        self.transport = transport
        #: Replica server subprocesses this router owns (tcp transport only);
        #: reaped by :meth:`close` / :meth:`kill`.
        self._processes: list[object] = list(processes) if processes else []
        self.ring = ring
        self.replication = min(replication, ring.num_shards)
        self.pool_size = pool_size
        self.prefer_curated = prefer_curated
        self.compress = compress
        self.shard_dir = shard_dir
        self.request_timeout = request_timeout
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_ROUTER_RETRY
        )
        assignments = replica_shards(ring.num_shards, self.replication)
        self.replicas = [
            _Replica(
                index=index,
                daemon=daemon,
                shards=assignments[index],
                breaker=CircuitBreaker(
                    error_threshold=0.5,
                    min_requests=1,
                    cooldown_seconds=breaker_cooldown,
                    window=16,
                ),
                path=Path(paths[index]) if paths is not None else None,
            )
            for index, daemon in enumerate(daemons)
        ]
        self._service = _RouterService(self, **service_kwargs)
        self._lock = threading.Lock()
        self._reroutes = 0
        self._rollouts = 0
        self._closed = False
        # Streaming-update accounting (repro.updates).
        self._deltas_applied = 0
        self._last_delta_seq: int | None = None
        self._last_delta_at = 0.0

    @property
    def processes(self) -> tuple[object, ...]:
        """Replica server subprocesses this router owns (tcp transport only)."""
        return tuple(self._processes)

    # -- Construction -------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        *,
        num_shards: int = 3,
        config: SynthesisConfig | None = None,
        replication: int | None = None,
        shard_dir: str | Path | None = None,
        watch: bool = True,
        workers: int | None = None,
        executor: str | None = None,
        queue_size: int | None = None,
        default_deadline: float | None = None,
        poll_seconds: float | None = None,
        prefer_curated: bool = True,
        service_cls: type[MappingService] = MappingService,
        request_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_cooldown: float = 1.0,
        transport: str | None = None,
        **service_kwargs,
    ) -> "ClusterRouter":
        """Cut ``path`` into shard artifacts and start one daemon per replica.

        Every serving knob a single :meth:`SynthesisDaemon.from_artifact`
        accepts is forwarded to each replica (so ``executor="process:1"``
        runs GIL-free replicas, ``service_cls`` swaps the served service
        class, etc.), and the same threshold ``service_kwargs`` configure the
        router's own application objects — both sides must agree for
        byte-identity to hold.

        ``transport`` (default: ``config.cluster_transport``) picks where the
        replicas live: ``"inproc"`` starts daemons in this process, ``"tcp"``
        spawns one :mod:`repro.net.server` subprocess per replica and wires
        :class:`~repro.net.RemoteReplica` clients in their place.  Merge
        semantics, failover, rollout, and deltas are identical either way.
        """
        from repro.store.artifact import load_artifact

        config = config or SynthesisConfig()
        if replication is None:
            replication = config.cluster_replication
        if request_timeout is None:
            request_timeout = config.cluster_request_timeout_seconds
        if transport is None:
            transport = config.cluster_transport
        if transport not in ("inproc", "tcp"):
            raise ValueError(
                f"transport must be 'inproc' or 'tcp', got {transport!r}"
            )
        path = Path(path)
        ring = HashRing(num_shards)
        shard_dir = (
            Path(shard_dir)
            if shard_dir is not None
            else path.parent / f"{path.name}.shards"
        )
        artifact = load_artifact(path)
        pool = (
            artifact.curated
            if prefer_curated and artifact.curated
            else artifact.mappings
        )
        paths = cut_shard_artifacts(
            artifact,
            shard_dir,
            ring,
            replication=replication,
            compress=config.artifact_compress,
            prefer_curated=prefer_curated,
        )
        daemons: list[SynthesisDaemon] = []
        processes: list[object] = []
        try:
            if transport == "tcp":
                # Deferred import: the inproc cluster stays importable even if
                # a trimmed deployment drops the net package.
                from repro.net.client import RemoteReplica
                from repro.net.server import spawn_replica_process

                for shard_path in paths:
                    process, host, port = spawn_replica_process(
                        shard_path,
                        config=config,
                        watch=watch,
                        workers=workers,
                        executor=executor,
                        queue_size=queue_size,
                        default_deadline=default_deadline,
                        poll_seconds=poll_seconds,
                        prefer_curated=prefer_curated,
                        request_timeout=request_timeout,
                        service_cls=(
                            service_cls if service_cls is not MappingService else None
                        ),
                        **service_kwargs,
                    )
                    processes.append(process)
                    daemons.append(
                        RemoteReplica(
                            host,
                            port,
                            name=f"replica-{len(daemons)}",
                            connect_timeout=config.net_connect_timeout_seconds,
                            request_timeout=request_timeout,
                        )
                    )
            else:
                for shard_path in paths:
                    daemons.append(
                        SynthesisDaemon.from_artifact(
                            shard_path,
                            config=config,
                            watch=watch,
                            workers=workers,
                            executor=executor,
                            queue_size=queue_size,
                            default_deadline=default_deadline,
                            poll_seconds=poll_seconds,
                            prefer_curated=prefer_curated,
                            retry_policy=retry_policy,
                            service_cls=service_cls,
                            **service_kwargs,
                        )
                    )
        except BaseException:
            for daemon in daemons:
                daemon.close(drain=False)
            for process in processes:
                try:
                    process.kill()
                    process.wait(timeout=10)
                except Exception:
                    pass
            raise
        return cls(
            daemons,
            ring,
            replication=replication,
            paths=paths,
            shard_dir=shard_dir,
            pool_size=len(pool),
            prefer_curated=prefer_curated,
            compress=config.artifact_compress,
            request_timeout=request_timeout,
            retry_policy=retry_policy,
            breaker_cooldown=breaker_cooldown,
            transport=transport,
            processes=processes,
            **service_kwargs,
        )

    # -- Scatter-gather core ------------------------------------------------------------
    def _pick_cover(self, excluded: set[int]) -> list[_Replica]:
        """A minimal-ish healthy replica set jointly hosting every shard.

        Greedy primary-first: walk replicas in index order, take any healthy
        one that still contributes a needed shard.  With all replicas healthy
        this picks ``ceil(num_shards / replication)`` replicas, each answering
        from its own slice.
        """
        needed = set(range(self.ring.num_shards))
        cover: list[_Replica] = []
        for replica in self.replicas:
            if not needed:
                break
            if replica.index in excluded or replica.daemon.closed:
                continue
            if not (replica.shards & needed):
                continue
            if not replica.breaker.allow():
                continue
            cover.append(replica)
            needed -= replica.shards
        if needed:
            raise NoHealthyReplicaError(
                f"no healthy replica hosts shard(s) {sorted(needed)}: "
                f"{len(excluded)} replica(s) excluded this scatter, "
                f"breakers {[r.breaker.state for r in self.replicas]}"
            )
        return cover

    def _scatter(self, request: LookupRequest) -> list[MappingMatch]:
        """Scatter one lookup to a healthy cover; merge, dedup, truncate.

        On any replica failure (submit rejection, timeout, transport error,
        or an error envelope from the shard) the failed replica's breaker
        records the error and the whole scatter is re-attempted against a
        recomputed cover on the retry schedule.  Overlapping answers from the
        wider cover are absorbed by the dedup, so failover never changes the
        merged result.

        Each attempt runs against **one** deadline — ``request_timeout`` from
        the attempt's first submit.  The remaining budget is what each submit
        and each gather wait gets (in-process as the ticket ``deadline``, over
        tcp encoded into the lookup frame and re-enforced replica-side), so
        time burned submitting, stalling on the network, or waiting on one
        replica is never re-granted to the next.
        """
        if self._closed:
            raise ClusterError("cluster router is closed")
        excluded: set[int] = set()
        attempt = 0
        while True:
            cover = self._pick_cover(excluded)
            attempt_deadline = time.monotonic() + self.request_timeout
            failed: _Replica | None = None
            failure: Exception | None = None
            gathered: list[list[MappingMatch]] = []
            pending: list[tuple[_Replica, object]] = []
            for replica in cover:
                remaining = max(attempt_deadline - time.monotonic(), 0.0)
                try:
                    pending.append(
                        (
                            replica,
                            replica.daemon.submit(
                                "cluster_lookup",
                                (request,),
                                deadline=remaining,
                                block=True,
                                timeout=max(remaining, 0.001),
                            ),
                        )
                    )
                except Exception as exc:
                    failed, failure = replica, exc
                    break
            if failed is None:
                for replica, ticket in pending:
                    remaining = max(attempt_deadline - time.monotonic(), 0.0)
                    if failed is not None:
                        # A sibling already failed this round; still collect
                        # the remaining tickets so their work is accounted.
                        try:
                            ticket.result(timeout=remaining)
                        except Exception:
                            pass
                        continue
                    try:
                        result = ticket.result(timeout=remaining)
                        response: ServedResponse = result.responses[0]
                        if response.error is not None:
                            raise ClusterError(
                                f"replica {replica.index} lookup failed: "
                                f"{response.error}"
                            )
                        gathered.append(response.result)
                        replica.breaker.record(1, 0)
                        replica.served += 1
                    except Exception as exc:
                        failed, failure = replica, exc
            if failed is None:
                return self._merge(gathered, request.top_k)
            failed.breaker.record(0, 1)
            failed.failed += 1
            excluded.add(failed.index)
            with self._lock:
                self._reroutes += 1
            attempt += 1
            if attempt > self.retry_policy.attempts:
                raise ClusterError(
                    f"scatter failed after {attempt} attempt(s); last failure "
                    f"on replica {failed.index}: {failure}"
                ) from failure
            if not isinstance(
                failure, (type(None), ClusterError)
            ) and not self.retry_policy.retries(failure):
                raise ClusterError(
                    f"scatter failed on replica {failed.index}: {failure}"
                ) from failure
            time.sleep(self.retry_policy.delay(attempt))

    @staticmethod
    def _merge(gathered: Iterable[list[MappingMatch]], top_k: int) -> list[MappingMatch]:
        best: dict[str, MappingMatch] = {}
        for matches in gathered:
            for match in matches:
                # Replicas hosting the same shard compute identical matches
                # for the same mapping, so first-seen wins is not a choice.
                best.setdefault(match.mapping.mapping_id, match)
        ordered = sorted(
            best.values(),
            key=lambda match: (-match.score, mapping_rank_key(match.mapping)),
        )
        return ordered[:top_k]

    # -- Serving entry points -----------------------------------------------------------
    def autofill(self, requests: Sequence[FillRequest]) -> list[ServedResponse]:
        """Serve an auto-fill batch; envelopes in submission order."""
        return self._service.autofill(requests)

    def autojoin(self, requests: Sequence[JoinRequest]) -> list[ServedResponse]:
        """Serve an auto-join batch; envelopes in submission order."""
        return self._service.autojoin(requests)

    def autocorrect(self, requests: Sequence[CorrectRequest]) -> list[ServedResponse]:
        """Serve an auto-correct batch; envelopes in submission order."""
        return self._service.autocorrect(requests)

    def serve(self, kind: str, requests: Sequence[object]) -> list[ServedResponse]:
        """Serve one batch by kind name (the dynamic-dispatch entry point)."""
        if kind not in ROUTER_REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {kind!r}; expected {ROUTER_REQUEST_KINDS}"
            )
        return getattr(self._service, kind)(requests)

    @property
    def stats(self) -> ServiceStats:
        """The router-level serving stats (per-request kinds and latencies)."""
        return self._service.stats

    # -- Live delta application (repro.updates) -----------------------------------------
    def apply_delta(
        self,
        upserts: Iterable[object],
        removed: Iterable[str],
        *,
        seq: int,
        escalation_ratio: float = 0.25,
        pool_size: int | None = None,
    ) -> None:
        """Scatter one update-stream delta to the replicas owning its shards.

        Each mapping id is routed by the same :meth:`HashRing.shard_of`
        placement the artifact cutter uses, so every replica receives exactly
        the slice of the patch that falls in its shards (upserts **and**
        removals) and patches its daemon in place via
        :meth:`SynthesisDaemon.apply_delta`.  Replicas whose slice is empty
        are not touched; closed replicas are skipped (a restarted replica
        catches up from the compacted artifact).  ``pool_size`` updates the
        router's advertised global pool size after the patch.
        """
        if self._closed:
            raise ClusterError("cluster router is closed")
        upserts = list(upserts)
        removed = list(removed)
        for replica in self.replicas:
            if replica.daemon.closed:
                continue
            shard_upserts = [
                mapping
                for mapping in upserts
                if self.ring.shard_of(mapping.mapping_id) in replica.shards
            ]
            shard_removed = [
                mapping_id
                for mapping_id in removed
                if self.ring.shard_of(mapping_id) in replica.shards
            ]
            if not shard_upserts and not shard_removed:
                continue
            try:
                replica.daemon.apply_delta(
                    shard_upserts,
                    shard_removed,
                    seq=seq,
                    escalation_ratio=escalation_ratio,
                )
            except DaemonStoppedError:
                # Closed between the check and the call — same as skipping.
                continue
        if pool_size is not None:
            self.pool_size = pool_size
        with self._lock:
            self._deltas_applied += 1
            self._last_delta_seq = seq
            self._last_delta_at = time.monotonic()

    # -- Rollout ------------------------------------------------------------------------
    def rollout(self, source, *, timeout: float = 30.0) -> list[int]:
        """Rolling artifact rollout: re-cut and publish one replica at a time.

        ``source`` is a new full artifact (object or path).  For each live
        replica in index order: cut its shard slice to its watched path, then
        wait for that daemon's generation tag to advance before moving on —
        at any instant at most one replica is swapping, and every batch is
        still served entirely by one generation of one replica.  Closed
        replicas are skipped (their files are still re-cut, so a restarted
        replica comes back on the new version).  Returns the post-rollout
        generation numbers.
        """
        from repro.store.artifact import SynthesisArtifact, load_artifact

        if self.shard_dir is None:
            raise ClusterError(
                "this router was not built from shard artifacts; nothing to roll"
            )
        artifact = (
            source
            if isinstance(source, SynthesisArtifact)
            else load_artifact(source)
        )
        for replica in self.replicas:
            alive = not replica.daemon.closed and replica.daemon.watcher is not None
            target = replica.daemon.generation.number + 1 if alive else None
            cut_shard_artifacts(
                artifact,
                self.shard_dir,
                self.ring,
                replication=self.replication,
                compress=self.compress,
                prefer_curated=self.prefer_curated,
                only_replica=replica.index,
            )
            if target is None:
                continue
            await_generation = getattr(replica.daemon, "await_generation", None)
            if await_generation is not None:
                # Remote replicas block server-side (one NOTIFY round trip)
                # instead of polling the generation over the wire.
                reached = await_generation(target, timeout=timeout)
                if reached < target:
                    raise ClusterError(
                        f"replica {replica.index} did not reach generation "
                        f"{target} within {timeout}s (reached {reached})"
                    )
                continue
            deadline = time.monotonic() + timeout
            while replica.daemon.generation.number < target:
                if time.monotonic() > deadline:
                    watcher_health = replica.daemon.watcher.health()
                    raise ClusterError(
                        f"replica {replica.index} did not reach generation "
                        f"{target} within {timeout}s "
                        f"(watcher: {watcher_health})"
                    )
                replica.daemon.watcher.check_now()
                time.sleep(0.01)
        with self._lock:
            self._rollouts += 1
        return [replica.daemon.generation.number for replica in self.replicas]

    # -- Chaos / lifecycle --------------------------------------------------------------
    def kill(self, index: int) -> None:
        """Abruptly stop one replica (no drain) — the chaos-drill entry point.

        Idempotent and never raises: killing an already-dead replica (or one
        whose server process is gone) is a no-op.  Over tcp this also kills
        the replica's server process, so the drill severs real sockets.
        """
        try:
            self.replicas[index].daemon.close(drain=False)
        except Exception:
            pass
        self._reap_process(index, graceful=False)

    def _reap_process(self, index: int, *, graceful: bool) -> None:
        """Terminate and wait one replica's server process.  Never raises."""
        if index >= len(self._processes):
            return
        process = self._processes[index]
        try:
            if process.poll() is None:
                process.terminate() if graceful else process.kill()
            process.wait(timeout=10)
        except Exception:
            try:
                process.kill()
                process.wait(timeout=5)
            except Exception:
                pass

    def health(self) -> dict[str, object]:
        """One JSON-able snapshot aggregating every replica's health."""
        replicas = []
        reasons: list[str] = []
        transports: list[dict[str, object]] = []
        for replica in self.replicas:
            daemon_health = replica.daemon.health()
            breaker = replica.breaker.snapshot()
            if replica.daemon.closed:
                reasons.append(f"replica {replica.index} is closed")
            elif breaker["state"] in ("open", "half-open"):
                reasons.append(
                    f"replica {replica.index} breaker is {breaker['state']}"
                )
            elif daemon_health["status"] != "ok":
                reasons.append(
                    f"replica {replica.index} daemon is {daemon_health['status']}"
                )
            transport = daemon_health.get("transport")
            if isinstance(transport, dict):
                transports.append(transport)
            replicas.append(
                {
                    "index": replica.index,
                    "shards": sorted(replica.shards),
                    "closed": replica.daemon.closed,
                    "served": replica.served,
                    "failed": replica.failed,
                    "breaker": breaker,
                    "daemon": daemon_health,
                }
            )
        stats = self._service.stats.as_dict()
        with self._lock:
            reroutes = self._reroutes
            rollouts = self._rollouts
            closed = self._closed
        status = "closed" if closed else ("degraded" if reasons else "ok")
        # Fleet-wide transport aggregate: counters sum across replicas, rtt
        # percentiles take the worst replica (the one a slow tail hides in).
        # Keys mirror repro.net.TRANSPORT_HEALTH_KEYS.
        transport_aggregate: dict[str, object] = {"kind": self.transport}
        for key in (
            "connections",
            "frames_sent",
            "frames_received",
            "bytes_sent",
            "bytes_received",
            "reconnects",
        ):
            transport_aggregate[key] = sum(
                int(snapshot.get(key, 0)) for snapshot in transports
            )
        for key in ("rtt_ms_p50", "rtt_ms_p90"):
            transport_aggregate[key] = max(
                (float(snapshot.get(key, 0.0)) for snapshot in transports),
                default=0.0,
            )
        return {
            "status": status,
            "degraded_reasons": reasons,
            "transport": transport_aggregate,
            "num_shards": self.ring.num_shards,
            "replication": self.replication,
            "generations": [
                replica.daemon.generation.number for replica in self.replicas
            ],
            "replicas": replicas,
            "requests": stats["requests"],
            "errors": stats["errors"],
            "reroutes": reroutes,
            "rollouts": rollouts,
            "deltas_applied": self._deltas_applied,
            "last_delta_seq": self._last_delta_seq,
            "update_lag": (
                time.monotonic() - self._last_delta_at
                if self._last_delta_at
                else 0.0
            ),
        }

    def close(self, *, drain: bool = True) -> None:
        """Stop every replica and reap any replica server processes.

        Idempotent and never raises: a double close (or a close racing
        :meth:`kill`, or an exit path running after a partial failure) finds
        every daemon, socket, and subprocess already released and does
        nothing.  One replica failing to stop never strands the rest.
        """
        self._closed = True
        for replica in self.replicas:
            try:
                replica.daemon.close(drain=drain)
            except Exception:
                pass
        for index in range(len(self._processes)):
            self._reap_process(index, graceful=True)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterRouter(shards={self.ring.num_shards}, "
            f"replication={self.replication}, "
            f"replicas={len(self.replicas)})"
        )
