"""Consistent hashing and per-shard artifact cutting for the serving cluster.

Two pieces live here:

* :class:`HashRing` — a deterministic consistent-hash ring over mapping ids.
  Placement is computed from SHA-1 digests, **never** from the builtin
  :func:`hash` (which is salted per process — a ring built in the router
  process must agree byte-for-byte with one built inside a replica worker,
  and with the ring that cut the replica's artifact last week).  Virtual
  nodes smooth the distribution so no shard ends up with a lopsided slice of
  the mapping pool.

* :func:`cut_shard_artifacts` — slices one published synthesis artifact into
  per-replica shard artifacts.  Each cut is an
  :meth:`~repro.store.artifact.SynthesisArtifact.evolve` that keeps only the
  replica's mappings + curation slice and empties the pipeline-only sections
  (candidates, profiles, edges); :func:`~repro.store.save_artifact` then
  copies the untouched sections (config, fingerprints, stats) into the shard
  file *verbatim* via ``ArtifactWriter.add_stored`` — no decode, no
  re-encode — so a replica's cold start decodes exactly its slice and
  nothing else.

Replica ``i`` hosts shards ``{(i + j) % num_shards for j in range(
replication)}``: with ``replication >= 2`` every shard lives on at least two
replicas, so the router can still assemble a full cover with one replica
down.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from pathlib import Path

from repro.store.artifact import SynthesisArtifact, load_artifact, save_artifact

__all__ = ["HashRing", "replica_shards", "cut_shard_artifacts"]


#: Virtual nodes per shard on the ring.  Enough to keep the largest/smallest
#: shard ratio small for realistic pool sizes while keeping ring construction
#: trivially cheap (num_shards * this many SHA-1 digests, computed once).
DEFAULT_VIRTUAL_NODES = 64


def _stable_hash(token: str) -> int:
    """A process-independent 64-bit hash (builtin ``hash`` is salted)."""
    return int.from_bytes(hashlib.sha1(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring mapping keys to ``num_shards`` shards.

    Every instance built with the same ``(num_shards, virtual_nodes)`` places
    every key identically, in every process, forever — shard placement is part
    of the cluster's serving contract (the artifact cutter and the router must
    agree on where a mapping lives).

    Consistent hashing (vs ``hash(key) % n``) keeps most placements stable
    when the shard count changes: only the keys falling in the moved ring
    arcs migrate, which is what makes re-cutting a grown cluster an
    incremental operation rather than a full reshuffle.
    """

    def __init__(
        self, num_shards: int, *, virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.num_shards = num_shards
        self.virtual_nodes = virtual_nodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica_point in range(virtual_nodes):
                points.append((_stable_hash(f"shard:{shard}:{replica_point}"), shard))
        # Ties are broken by shard index so the ring order is total even in
        # the (astronomically unlikely) event of a digest collision.
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def shard_of(self, key: str) -> int:
        """The shard hosting ``key`` (deterministic across processes)."""
        position = _stable_hash(f"key:{key}")
        keys = self._keys
        # First ring point at or after the key's position, wrapping at the top.
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < position:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(keys):
            lo = 0
        return self._points[lo][1]

    def shards_of(self, keys: Sequence[str]) -> dict[str, int]:
        """Batch :meth:`shard_of` (one dict pass, handy for artifact cutting)."""
        return {key: self.shard_of(key) for key in keys}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(num_shards={self.num_shards}, "
            f"virtual_nodes={self.virtual_nodes})"
        )


def replica_shards(num_shards: int, replication: int) -> list[frozenset[int]]:
    """The shard set hosted by each of ``num_shards`` replicas.

    Replica ``i`` hosts its primary shard ``i`` plus the next
    ``replication - 1`` shards around the ring of replicas, so every shard is
    hosted by exactly ``min(replication, num_shards)`` replicas and losing any
    single replica (with ``replication >= 2``) still leaves a full cover.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    replication = min(replication, num_shards)
    return [
        frozenset((index + offset) % num_shards for offset in range(replication))
        for index in range(num_shards)
    ]


def cut_shard_artifacts(
    source: SynthesisArtifact | str | Path,
    out_dir: str | Path,
    ring: HashRing,
    *,
    replication: int = 1,
    compress: bool = True,
    prefer_curated: bool = True,
    only_replica: int | None = None,
) -> list[Path]:
    """Cut one artifact into per-replica shard artifacts under ``out_dir``.

    Returns one path per replica (``replica-<i>.artifact``), stable across
    cuts — the rolling rollout re-cuts a new source to the same paths, and
    each replica's :class:`~repro.serving.watcher.ArtifactWatcher` picks up
    its own file.  ``only_replica`` restricts the cut to a single replica's
    file (the rollout uses this to publish one replica at a time); the full
    path list is still returned.

    The slices are cut from the **served pool** — the curated mappings when
    ``prefer_curated`` and curation kept any (matching
    :meth:`MappingService.from_artifact_object`), the full synthesis output
    otherwise — plus the matching curation-id slice.  Cutting the pool rather
    than the raw mappings section matters for exactness: a replica whose
    curated slice happens to be empty must serve an *empty* shard, never fall
    back to non-curated mappings the single-service oracle would exclude.
    The union of slices over any shard cover reassembles the oracle pool.
    """
    artifact = source if isinstance(source, SynthesisArtifact) else load_artifact(source)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    assignments = replica_shards(ring.num_shards, replication)

    curated = artifact.curated
    pool = curated if prefer_curated and curated else artifact.mappings
    placement = {m.mapping_id: ring.shard_of(m.mapping_id) for m in pool}
    paths: list[Path] = []
    for index, shards in enumerate(assignments):
        path = out_dir / f"replica-{index}.artifact"
        paths.append(path)
        if only_replica is not None and index != only_replica:
            continue
        shard_mappings = [m for m in pool if placement[m.mapping_id] in shards]
        shard_curated = [
            mapping_id
            for mapping_id in artifact.curated_ids
            if placement.get(mapping_id, ring.shard_of(mapping_id)) in shards
        ]
        shard = artifact.evolve(
            candidates=[],
            profiles={},
            positive_edges={},
            negative_edges={},
            mappings=shard_mappings,
            curated_ids=shard_curated,
        )
        save_artifact(shard, path, compress=compress)
    return paths
