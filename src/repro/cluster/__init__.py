"""Sharded multi-daemon serving cluster with an exact scatter-gather router.

One :class:`~repro.serving.SynthesisDaemon` serves one host's worth of
traffic; this package is the scale-out tier above it:

* :mod:`repro.cluster.sharding` — :class:`HashRing` (deterministic,
  SHA-1-based consistent hashing of mapping ids to shards) and
  :func:`cut_shard_artifacts` (slices one published artifact into
  per-replica shard artifacts, reusing untouched v2 sections verbatim so
  each replica decodes only its slice);
* :mod:`repro.cluster.router` — :class:`ClusterRouter`: scatter-gathers
  autofill / autojoin / autocorrect batches across N daemon replicas via the
  raw ``cluster_lookup`` request kind, merges shard-local top-k match lists
  into the exact single-index answer, fails over around open circuit
  breakers and dead replicas, and rolls new artifact versions out one
  replica at a time on the daemons' generation tags.

The package-level invariant (locked by ``tests/test_cluster_properties.py``):
**every response envelope a router returns is byte-identical to the one a
single synchronous** :class:`~repro.applications.MappingService` **over the
full artifact would return** — before, during, and after rolling reloads,
and with any single replica dead when ``replication >= 2``.

The execution-layer counterpart is the ``cluster:N`` executor kind
(:class:`repro.exec.ClusterBackend`): N isolated single-worker process
replicas behind the standard backend protocol, selectable through
``SynthesisConfig.executor`` / ``REPRO_EXECUTOR`` like any other spec.
"""

from repro.cluster.router import (
    ClusterError,
    ClusterRouter,
    NoHealthyReplicaError,
    ROUTER_REQUEST_KINDS,
    ScatterIndex,
)
from repro.cluster.sharding import HashRing, cut_shard_artifacts, replica_shards

__all__ = [
    "ClusterRouter",
    "ClusterError",
    "NoHealthyReplicaError",
    "ScatterIndex",
    "ROUTER_REQUEST_KINDS",
    "HashRing",
    "replica_shards",
    "cut_shard_artifacts",
]
