"""Knowledge-base baselines (Freebase / YAGO, paper §5.1).

The real RDF dumps are not available offline, so a :class:`SyntheticKnowledgeBase`
is built from the seed relations with the two properties the paper attributes to
knowledge bases: (a) **incomplete relation coverage** — a configurable fraction of
relations simply is not present (the paper notes YAGO has none of the Table 1
mappings and Freebase misses two); and (b) **no synonymous mentions** — one
canonical name per entity, so recall against a synonym-rich ground truth is low
even for covered relations.
"""

from __future__ import annotations

import random

from repro.baselines.base import BaselineMethod
from repro.core.binary_table import BinaryTable
from repro.core.mapping import MappingRelationship
from repro.core.binary_table import ValuePair
from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import SeedRelation, all_seed_relations

__all__ = [
    "SyntheticKnowledgeBase",
    "KnowledgeBaseBaseline",
    "FreebaseBaseline",
    "YagoBaseline",
]


class SyntheticKnowledgeBase:
    """A curated-style knowledge base derived from the seed relations."""

    def __init__(
        self,
        relations: list[SeedRelation] | None = None,
        coverage: float = 0.6,
        instance_coverage: float = 0.9,
        seed: int = 0,
        name: str = "kb",
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        if not 0.0 < instance_coverage <= 1.0:
            raise ValueError(
                f"instance_coverage must be in (0, 1], got {instance_coverage}"
            )
        self.name = name
        self.coverage = coverage
        self.instance_coverage = instance_coverage
        relations = relations if relations is not None else all_seed_relations()
        rng = random.Random(seed)
        ordered = sorted(relations, key=lambda relation: relation.name)
        rng.shuffle(ordered)
        keep = int(round(len(ordered) * coverage))
        self.covered_relations = sorted(ordered[:keep], key=lambda relation: relation.name)
        self._rng = rng

    def triples(self) -> list[tuple[str, str, str]]:
        """Return (subject, predicate, object) triples for the covered relations."""
        result: list[tuple[str, str, str]] = []
        for relation in self.covered_relations:
            pairs = list(relation.pairs)
            keep = max(1, int(round(len(pairs) * self.instance_coverage)))
            for left, right in pairs[:keep]:
                result.append((left, relation.name, right))
        return result

    def relationships(self) -> list[MappingRelationship]:
        """Group triples by predicate into subject→object and object→subject relations."""
        mappings: list[MappingRelationship] = []
        by_predicate: dict[str, list[tuple[str, str]]] = {}
        for subject, predicate, obj in self.triples():
            by_predicate.setdefault(predicate, []).append((subject, obj))
        for index, predicate in enumerate(sorted(by_predicate)):
            pairs = by_predicate[predicate]
            mappings.append(
                MappingRelationship(
                    mapping_id=f"{self.name}-{predicate}-forward",
                    pairs=[ValuePair(left, right) for left, right in pairs],
                    source_tables=[f"{self.name}:{predicate}"],
                    domains={self.name},
                    column_names=("subject", "object"),
                )
            )
            mappings.append(
                MappingRelationship(
                    mapping_id=f"{self.name}-{predicate}-reverse",
                    pairs=[ValuePair(right, left) for left, right in pairs],
                    source_tables=[f"{self.name}:{predicate}"],
                    domains={self.name},
                    column_names=("object", "subject"),
                )
            )
        return mappings


class KnowledgeBaseBaseline(BaselineMethod):
    """Evaluate benchmark cases against a (synthetic) knowledge base."""

    name = "KnowledgeBase"

    def __init__(self, knowledge_base: SyntheticKnowledgeBase) -> None:
        self.knowledge_base = knowledge_base

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        # Knowledge bases are independent of the table corpus: the corpus and any
        # shared candidates are ignored.
        return self.knowledge_base.relationships()


class FreebaseBaseline(KnowledgeBaseBaseline):
    """Freebase-like KB: broader coverage, still no synonyms."""

    name = "Freebase"

    def __init__(self, seed: int = 11) -> None:
        super().__init__(
            SyntheticKnowledgeBase(coverage=0.5, instance_coverage=0.95, seed=seed,
                                   name="freebase")
        )


class YagoBaseline(KnowledgeBaseBaseline):
    """YAGO-like KB: narrower coverage than Freebase, no synonyms."""

    name = "YAGO"

    def __init__(self, seed: int = 13) -> None:
        super().__init__(
            SyntheticKnowledgeBase(coverage=0.3, instance_coverage=0.9, seed=seed,
                                   name="yago")
        )
