"""Union-table baselines (Ling & Halevy et al. [30], paper §5.1).

``UnionDomain`` unions candidate tables that share identical column names *within
the same web domain*; ``UnionWeb`` relaxes the domain restriction and unions by
column names across the whole corpus.  Because column headers are frequently
generic (``name`` / ``code``), the web-wide variant over-groups unrelated relations
— the failure mode the paper demonstrates experimentally.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import BaselineMethod
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.text.matching import normalize_value

__all__ = ["UnionDomainBaseline", "UnionWebBaseline"]


def _header_key(table: BinaryTable) -> tuple[str, str]:
    return (normalize_value(table.left_name), normalize_value(table.right_name))


class UnionDomainBaseline(BaselineMethod):
    """Union tables with identical column names within the same domain."""

    name = "UnionDomain"

    def __init__(self, config: SynthesisConfig | None = None) -> None:
        self.config = config or SynthesisConfig()

    def _group_key(self, table: BinaryTable) -> tuple:
        return (table.domain, *_header_key(table))

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        tables = self._ensure_candidates(corpus, candidates, self.config)
        groups: dict[tuple, list[BinaryTable]] = defaultdict(list)
        for table in tables:
            groups[self._group_key(table)].append(table)
        mappings: list[MappingRelationship] = []
        for index, key in enumerate(sorted(groups, key=str)):
            mappings.append(
                MappingRelationship.from_tables(
                    f"{self.name.lower()}-{index:06d}", groups[key]
                )
            )
        return mappings


class UnionWebBaseline(UnionDomainBaseline):
    """Union tables with identical column names across the whole corpus."""

    name = "UnionWeb"

    def _group_key(self, table: BinaryTable) -> tuple:
        return _header_key(table)
