"""The paper's Synthesis approach (and its SynthesisPos ablation) wrapped as methods.

Wrapping the pipeline in the same :class:`~repro.baselines.base.BaselineMethod`
interface lets the experiment runner treat Synthesis uniformly with every baseline.
"""

from __future__ import annotations

from repro.baselines.base import BaselineMethod
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.synthesis.synthesizer import TableSynthesizer
from repro.text.synonyms import SynonymDictionary

__all__ = ["SynthesisMethod", "SynthesisPosMethod"]


class SynthesisMethod(BaselineMethod):
    """The full approach of the paper (Section 4)."""

    name = "Synthesis"

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.synonyms = synonyms

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        tables = self._ensure_candidates(corpus, candidates, self.config)
        synthesizer = TableSynthesizer(self.config, self.synonyms)
        return synthesizer.synthesize(tables).mappings


class SynthesisPosMethod(SynthesisMethod):
    """Synthesis without FD-induced negative signals (ablation, paper §5.2)."""

    name = "SynthesisPos"

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
    ) -> None:
        base = config or SynthesisConfig()
        super().__init__(base.with_overrides(use_negative_edges=False), synonyms)
