"""Common interface for all evaluated methods.

Every method — the paper's Synthesis approach and every baseline — implements
:class:`BaselineMethod`: given a table corpus (and optionally pre-extracted
candidate binary tables, so expensive extraction is shared across methods in the
experiment harness), produce a list of candidate
:class:`~repro.core.mapping.MappingRelationship` objects.  The evaluation then
scores each benchmark case against the best-matching relationship each method
produced, exactly as the paper does ("we score each benchmark case by picking the
relationship in each data set that has the best f-score").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.extraction.candidates import CandidateExtractor

__all__ = ["BaselineMethod", "candidates_from_corpus"]


def candidates_from_corpus(
    corpus: TableCorpus, config: SynthesisConfig | None = None
) -> list[BinaryTable]:
    """Extract candidate binary tables once, for sharing across methods."""
    extractor = CandidateExtractor(config or SynthesisConfig())
    candidates, _ = extractor.extract(corpus)
    return candidates


class BaselineMethod(ABC):
    """A method that produces candidate mapping relationships from a corpus."""

    #: Display name used in experiment reports (matches the paper's method names).
    name: str = "method"

    @abstractmethod
    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        """Produce candidate mapping relationships.

        Parameters
        ----------
        corpus:
            The input table corpus.
        candidates:
            Optionally, candidate binary tables already extracted from ``corpus``;
            methods that operate on candidates should use them instead of
            re-running extraction.
        """

    # -- Helpers shared by subclasses ---------------------------------------------------
    def _ensure_candidates(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None,
        config: SynthesisConfig | None = None,
    ) -> list[BinaryTable]:
        if candidates is not None:
            return candidates
        return candidates_from_corpus(corpus, config)

    @staticmethod
    def _tables_to_mappings(
        tables: list[BinaryTable], prefix: str
    ) -> list[MappingRelationship]:
        """Wrap raw binary tables as (single-table) mapping relationships."""
        return [
            MappingRelationship.from_tables(f"{prefix}-{index:06d}", [table])
            for index, table in enumerate(tables)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
