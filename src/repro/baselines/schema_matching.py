"""Schema-matching-style baselines (paper §5.1).

* ``SchemaCC`` mimics a pairwise schema matcher that uses the *same* positive and
  negative signals as Synthesis, but aggregates pairwise match decisions by
  transitivity — connected components over edges whose thresholded combination of
  scores says "match".  Transitive closure over-groups, which is the point the
  paper makes.
* ``SchemaPosCC`` is the same without the FD-induced negative signal (schema
  matching literature does not use it).
* ``WiseIntegrator`` represents the collective web-form schema matchers [22, 23]:
  it clusters candidate columns greedily by linguistic similarity of attribute
  names plus value-type similarity.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import BaselineMethod
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.graph.build import GraphBuilder
from repro.graph.connected import UnionFind
from repro.text.edit_distance import edit_distance
from repro.text.matching import normalize_value

__all__ = ["SchemaCCBaseline", "WiseIntegratorBaseline"]


class SchemaCCBaseline(BaselineMethod):
    """Pairwise matching + transitive (connected-component) aggregation.

    Parameters
    ----------
    threshold:
        Minimum combined score for an edge to count as a pairwise "match".  The
        paper sweeps thresholds in [0, 1] and reports the best; the experiment
        runner does the same via :meth:`sweep_thresholds`.
    use_negative:
        When ``True`` the combined score is ``w+ + w−`` (SchemaCC); when ``False``
        only ``w+`` is used (SchemaPosCC).
    """

    name = "SchemaCC"

    def __init__(
        self,
        threshold: float = 0.5,
        use_negative: bool = True,
        config: SynthesisConfig | None = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.use_negative = use_negative
        self.config = config or SynthesisConfig()
        if not use_negative:
            self.name = "SchemaPosCC"

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        tables = self._ensure_candidates(corpus, candidates, self.config)
        # Build the same sparse scored graph Synthesis uses (including edges below
        # θ_edge, since the matcher applies its own threshold): reuse the builder
        # with θ_edge = 0 so all blocked positive edges are materialized.
        graph_config = self.config.with_overrides(edge_threshold=0.0)
        graph = GraphBuilder(graph_config).build(tables)

        finder = UnionFind(range(len(tables)))
        for (first, second), positive in graph.positive_edges.items():
            combined = positive
            if self.use_negative:
                combined = positive + graph.negative(first, second)
            if combined >= self.threshold:
                finder.union(first, second)
        mappings: list[MappingRelationship] = []
        for index, group in enumerate(finder.groups()):
            members = [tables[vertex] for vertex in group]
            mappings.append(
                MappingRelationship.from_tables(f"{self.name.lower()}-{index:06d}", members)
            )
        return mappings

    @classmethod
    def sweep_thresholds(
        cls,
        use_negative: bool,
        thresholds: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
        config: SynthesisConfig | None = None,
    ) -> list["SchemaCCBaseline"]:
        """Instantiate one baseline per threshold (the runner keeps the best)."""
        return [cls(threshold, use_negative, config) for threshold in thresholds]


def _value_type(values: list[str]) -> str:
    """Crude value-type detector: numeric, short-code, or text."""
    if not values:
        return "text"
    numeric = sum(1 for value in values if value.strip().replace(".", "", 1).isdigit())
    if numeric / len(values) > 0.8:
        return "numeric"
    short = sum(1 for value in values if len(value.strip()) <= 4)
    if short / len(values) > 0.8:
        return "code"
    return "text"


def _name_similarity(first: str, second: str) -> float:
    """Linguistic similarity of attribute names: token overlap + edit distance."""
    a, b = normalize_value(first), normalize_value(second)
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    tokens_a, tokens_b = set(a.split()), set(b.split())
    jaccard = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
    max_len = max(len(a), len(b))
    edit_similarity = 1.0 - edit_distance(a, b) / max_len
    return max(jaccard, edit_similarity)


class WiseIntegratorBaseline(BaselineMethod):
    """Greedy clustering on attribute-name and value-type similarity [22, 23]."""

    name = "WiseIntegrator"

    def __init__(
        self,
        similarity_threshold: float = 0.75,
        config: SynthesisConfig | None = None,
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in [0, 1], got {similarity_threshold}"
            )
        self.similarity_threshold = similarity_threshold
        self.config = config or SynthesisConfig()

    def _table_signature(self, table: BinaryTable) -> tuple[str, str, str, str]:
        left_values = table.left_values
        right_values = table.right_values
        return (
            normalize_value(table.left_name),
            normalize_value(table.right_name),
            _value_type(left_values),
            _value_type(right_values),
        )

    def _similarity(self, first: tuple, second: tuple) -> float:
        name_score = 0.5 * (
            _name_similarity(first[0], second[0]) + _name_similarity(first[1], second[1])
        )
        type_score = 0.5 * ((first[2] == second[2]) + (first[3] == second[3]))
        return 0.7 * name_score + 0.3 * type_score

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        tables = self._ensure_candidates(corpus, candidates, self.config)
        signatures = [self._table_signature(table) for table in tables]

        # Greedy clustering: each table joins the first existing cluster whose
        # centroid signature is similar enough, otherwise starts a new cluster.
        clusters: list[list[int]] = []
        centroid_signatures: list[tuple] = []
        for index, signature in enumerate(signatures):
            best_cluster = -1
            best_score = self.similarity_threshold
            for cluster_index, centroid in enumerate(centroid_signatures):
                score = self._similarity(signature, centroid)
                if score >= best_score:
                    best_score = score
                    best_cluster = cluster_index
            if best_cluster < 0:
                clusters.append([index])
                centroid_signatures.append(signature)
            else:
                clusters[best_cluster].append(index)
                centroid_signatures[best_cluster] = self._centroid(
                    [signatures[i] for i in clusters[best_cluster]]
                )
        mappings: list[MappingRelationship] = []
        for cluster_index, members in enumerate(clusters):
            mappings.append(
                MappingRelationship.from_tables(
                    f"wiseintegrator-{cluster_index:06d}",
                    [tables[index] for index in members],
                )
            )
        return mappings

    @staticmethod
    def _centroid(signatures: list[tuple]) -> tuple:
        """Most common value per signature position (mode)."""
        result = []
        for position in range(4):
            counter = Counter(signature[position] for signature in signatures)
            result.append(counter.most_common(1)[0][0])
        return tuple(result)
