"""Correlation-clustering baseline (Chierichetti et al. [12], paper §5.1).

The paper mimics a schema matcher with the same positive/negative scores as
Synthesis but aggregates with correlation clustering, implemented as the
parallel-pivot algorithm on Map-Reduce.  The pivot algorithm repeatedly picks a
random unclustered vertex as a pivot and assigns its *one-hop* positively-connected
neighbours to the pivot's cluster — the locality the paper identifies as the reason
correlation clustering misses chained tables and converges slowly.
"""

from __future__ import annotations

import random

from repro.baselines.base import BaselineMethod
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.graph.build import GraphBuilder

__all__ = ["CorrelationClusteringBaseline"]


class CorrelationClusteringBaseline(BaselineMethod):
    """Parallel-pivot correlation clustering over the +/- compatibility graph."""

    name = "Correlation"

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        max_rounds: int = 50,
        seed: int = 0,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.config = config or SynthesisConfig()
        self.max_rounds = max_rounds
        self.seed = seed

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        tables = self._ensure_candidates(corpus, candidates, self.config)
        graph_config = self.config.with_overrides(edge_threshold=0.0)
        graph = GraphBuilder(graph_config).build(tables)

        # Adjacency of "agree" edges: positive weight dominates any negative weight.
        agree: dict[int, set[int]] = {index: set() for index in range(len(tables))}
        for (first, second), positive in graph.positive_edges.items():
            if positive + graph.negative(first, second) > 0:
                agree[first].add(second)
                agree[second].add(first)

        rng = random.Random(self.seed)
        unclustered = set(range(len(tables)))
        clusters: list[list[int]] = []
        rounds = 0
        while unclustered and rounds < self.max_rounds:
            rounds += 1
            # Parallel pivots: sample a set of pivots that are not neighbours of each
            # other (an independent set in the agree graph), mirroring the map-reduce
            # rounds of the parallel-pivot algorithm.
            order = sorted(unclustered)
            rng.shuffle(order)
            chosen_pivots: list[int] = []
            blocked: set[int] = set()
            for vertex in order:
                if vertex in blocked:
                    continue
                chosen_pivots.append(vertex)
                blocked.add(vertex)
                blocked |= agree[vertex]
            for pivot in chosen_pivots:
                members = [pivot] + [
                    neighbor for neighbor in agree[pivot] if neighbor in unclustered
                ]
                members = [vertex for vertex in members if vertex in unclustered]
                if not members:
                    continue
                clusters.append(members)
                unclustered -= set(members)
        # Anything left after the round limit becomes singleton clusters (the paper
        # times the method out after 20 hours and evaluates the state at that point).
        for vertex in sorted(unclustered):
            clusters.append([vertex])

        mappings: list[MappingRelationship] = []
        for index, members in enumerate(clusters):
            mappings.append(
                MappingRelationship.from_tables(
                    f"correlation-{index:06d}", [tables[vertex] for vertex in members]
                )
            )
        return mappings
