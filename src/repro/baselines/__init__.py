"""Every comparison method from the paper's evaluation (§5.1 "Methods compared")."""

from repro.baselines.base import BaselineMethod, candidates_from_corpus
from repro.baselines.single_table import (
    EntTableBaseline,
    SingleTableBaseline,
    WebTableBaseline,
    WikiTableBaseline,
)
from repro.baselines.union_tables import UnionDomainBaseline, UnionWebBaseline
from repro.baselines.schema_matching import SchemaCCBaseline, WiseIntegratorBaseline
from repro.baselines.correlation import CorrelationClusteringBaseline
from repro.baselines.knowledge_base import (
    FreebaseBaseline,
    KnowledgeBaseBaseline,
    SyntheticKnowledgeBase,
    YagoBaseline,
)
from repro.baselines.synthesis_method import SynthesisMethod, SynthesisPosMethod

__all__ = [
    "BaselineMethod",
    "candidates_from_corpus",
    "SingleTableBaseline",
    "WikiTableBaseline",
    "WebTableBaseline",
    "EntTableBaseline",
    "UnionDomainBaseline",
    "UnionWebBaseline",
    "SchemaCCBaseline",
    "WiseIntegratorBaseline",
    "CorrelationClusteringBaseline",
    "SyntheticKnowledgeBase",
    "KnowledgeBaseBaseline",
    "FreebaseBaseline",
    "YagoBaseline",
    "SynthesisMethod",
    "SynthesisPosMethod",
]
