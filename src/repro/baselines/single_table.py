"""Single-table baselines: WikiTable, WebTable, EntTable (paper §5.1).

These methods perform no synthesis: every candidate binary table is offered as a
mapping relationship on its own, and the evaluation picks the single best table per
benchmark case.  ``WikiTable`` restricts the corpus to Wikipedia tables;
``WebTable`` uses the whole web corpus; ``EntTable`` is the same idea on the
enterprise corpus.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.base import BaselineMethod
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table

__all__ = [
    "SingleTableBaseline",
    "WikiTableBaseline",
    "WebTableBaseline",
    "EntTableBaseline",
]


class SingleTableBaseline(BaselineMethod):
    """Offer each candidate binary table, unsynthesized, as a mapping."""

    name = "SingleTable"

    def __init__(
        self,
        table_filter: Callable[[Table], bool] | None = None,
        config: SynthesisConfig | None = None,
        name: str | None = None,
    ) -> None:
        self.table_filter = table_filter
        self.config = config or SynthesisConfig()
        if name is not None:
            self.name = name

    def synthesize(
        self,
        corpus: TableCorpus,
        candidates: list[BinaryTable] | None = None,
    ) -> list[MappingRelationship]:
        if self.table_filter is not None:
            corpus = corpus.filter(self.table_filter)
            # Filtering the corpus invalidates shared candidates extracted from the
            # full corpus, unless they can be filtered by source table id.
            if candidates is not None:
                allowed = set(corpus.table_ids())
                candidates = [
                    candidate
                    for candidate in candidates
                    if candidate.source_table_id in allowed
                ]
        tables = self._ensure_candidates(corpus, candidates, self.config)
        return self._tables_to_mappings(tables, self.name.lower())


class WikiTableBaseline(SingleTableBaseline):
    """Only tables from the Wikipedia domain (high precision, low coverage)."""

    name = "WikiTable"

    def __init__(self, config: SynthesisConfig | None = None, wiki_domain: str = "en.wikipedia.org") -> None:
        super().__init__(
            table_filter=lambda table: table.domain == wiki_domain,
            config=config,
            name=self.name,
        )


class WebTableBaseline(SingleTableBaseline):
    """Every table of the web corpus, offered individually."""

    name = "WebTable"

    def __init__(self, config: SynthesisConfig | None = None) -> None:
        super().__init__(table_filter=None, config=config, name=self.name)


class EntTableBaseline(SingleTableBaseline):
    """Every table of the enterprise corpus, offered individually (paper §5.5)."""

    name = "EntTable"

    def __init__(self, config: SynthesisConfig | None = None) -> None:
        super().__init__(table_filter=None, config=config, name=self.name)
