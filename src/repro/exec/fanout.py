"""Shared fan-out skeleton for the pipeline's blocked parallel call sites.

Three stages fan work across a :class:`~repro.exec.backend.ExecutionBackend` —
blocked-pair scoring (:mod:`repro.graph.build`), candidate-extraction sharding
(:mod:`repro.extraction.candidates`), and the Map-Reduce map phase
(:mod:`repro.mapreduce.engine`).  Each kept re-implementing the same three
steps with slightly different constants:

1. **gate** — don't spin up a pool unless the backend is parallel *and* there
   is enough work to amortize it;
2. **chunk** — split the items into contiguous blocks sized to the worker
   count (contiguity is what lets in-order callers recover the exact
   sequential output by concatenation);
3. **serial fallback** — any pool failure (pickling, sandboxed ``/dev/shm``,
   broken executor) must degrade to the caller's sequential path, with a flag
   so the degradation stays observable in stats and tests.

:class:`FanOut` is that skeleton.  The call sites stay deliberately in charge
of *what* runs — thread backends can share live objects while process backends
need module-level tasks plus a spawn-safe initializer — so the helper takes
the task/initializer per call and never inspects them.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.exec.backend import chunk_evenly, create_backend, parse_executor_spec
from repro.faults.retry import RetryPolicy

__all__ = ["FanOut"]


class FanOut:
    """Gate + chunk + run-with-serial-fallback for one executor spec.

    Parameters
    ----------
    spec:
        The executor spec (``"serial"``, ``"thread:8"``, ...) — validated here,
        so a typo fails at the call site's entry, not mid-build.
    chunks_per_worker:
        How many chunks each worker should see.  Oversplitting (the scoring
        and extraction sites use 4) smooths skewed chunk costs; the Map-Reduce
        site uses 1 to preserve its historical one-slice-per-worker layout.

    Attributes
    ----------
    fallback:
        True once a :meth:`run_blocks` / :meth:`run_unordered` call failed and
        the caller must compute sequentially.  Callers surface it in their own
        stats (``BuildStats.parallel_fallback``, ``last_parallel_fallback``,
        ``last_map_fallback``).
    fallback_reason:
        Why the last degradation happened — either the backend's own recorded
        reason (pool retry budget exhausted) or the exception that escaped.
    crash_recoveries / tasks_retried / faults_injected:
        Totals propagated from the backends this fan-out ran, so build stats
        can report recovery work that happened *without* falling back.
    """

    def __init__(
        self,
        spec: str,
        *,
        chunks_per_worker: int = 4,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        self.spec = spec
        self.kind, self.workers = parse_executor_spec(spec)
        self.chunks_per_worker = chunks_per_worker
        self.retry_policy = retry_policy
        self.fallback = False
        self.fallback_reason: str | None = None
        self.crash_recoveries = 0
        self.tasks_retried = 0
        self.faults_injected = 0

    def _absorb_backend_stats(self, backend: Any) -> None:
        # Pooled backends expose resilience counters; customs may not.
        self.crash_recoveries += getattr(backend, "crash_recoveries", 0)
        self.tasks_retried += getattr(backend, "tasks_retried", 0)
        self.faults_injected += getattr(backend, "faults_injected", 0)
        reason = getattr(backend, "fallback_reason", None)
        if reason:
            self.fallback_reason = reason

    def should_fan_out(self, num_items: int, *, min_items: int | None = None) -> bool:
        """True when the spec is parallel and the workload clears the gate.

        The default gate — at least two items per worker — keeps tiny
        workloads on the sequential path where pool startup would dominate.
        """
        if self.kind == "serial" or self.workers <= 1:
            return False
        if min_items is None:
            min_items = 2 * self.workers
        return num_items >= min_items

    def chunk(self, items: Sequence[Any]) -> list[list[Any]]:
        """Split ``items`` into contiguous blocks sized for this fan-out."""
        return chunk_evenly(items, self.workers * self.chunks_per_worker)

    def run_blocks(
        self,
        task: Callable[[Any], Any],
        blocks: Sequence[Any],
        *,
        spec: str | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> list[Any] | None:
        """``map_blocks`` across the backend; results come back in block order.

        Returns ``None`` — with :attr:`fallback` set — when the pool fails for
        any reason; the caller then runs its sequential path, which computes
        the identical result.  ``spec`` overrides the construction spec (the
        Map-Reduce site clamps the worker count to the record count).
        """
        backend = None
        try:
            with create_backend(
                spec or self.spec,
                initializer=initializer,
                initargs=initargs,
                retry_policy=self.retry_policy,
            ) as backend:
                return backend.map_blocks(task, blocks)
        except Exception as exc:
            self.fallback = True
            self.fallback_reason = f"{type(exc).__name__}: {exc}"
            return None
        finally:
            if backend is not None:
                self._absorb_backend_stats(backend)

    def run_unordered(
        self,
        task: Callable[[Any], Any],
        blocks: Sequence[Any],
        *,
        spec: str | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> list[Any] | None:
        """``map_unordered`` across the backend, collected in completion order.

        For callers whose results carry their own keys, so ordering cannot
        matter.  Same ``None``-plus-:attr:`fallback` contract as
        :meth:`run_blocks`.
        """
        backend = None
        try:
            with create_backend(
                spec or self.spec,
                initializer=initializer,
                initargs=initargs,
                retry_policy=self.retry_policy,
            ) as backend:
                return list(backend.map_unordered(task, blocks))
        except Exception as exc:
            self.fallback = True
            self.fallback_reason = f"{type(exc).__name__}: {exc}"
            return None
        finally:
            if backend is not None:
                self._absorb_backend_stats(backend)
