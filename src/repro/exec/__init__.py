"""One execution-backend API for every parallel stage of the pipeline.

``repro.exec`` unifies what used to be three disjoint pool implementations —
the graph builder's process pool, the Map-Reduce engine's thread pool, and the
serving daemon's hand-rolled worker threads — behind a single
:class:`ExecutionBackend` protocol selected by spec string
(:attr:`repro.core.config.SynthesisConfig.executor`): ``"serial"``,
``"thread:8"``, ``"process:4"``.  Every backend produces byte-identical
results to :class:`SerialBackend`; only the wall-clock differs.

:class:`FanOut` (:mod:`repro.exec.fanout`) is the shared gate + chunk +
serial-fallback skeleton the fan-out call sites (scoring, extraction
sharding, the Map-Reduce map phase) run their backends through.
"""

from repro.exec.backend import (
    ExecutionBackend,
    ExecutorSpecError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    chunk_evenly,
    create_backend,
    parse_executor_spec,
    register_backend,
    registered_backends,
)
from repro.exec.fanout import FanOut

__all__ = [
    "ExecutionBackend",
    "ExecutorSpecError",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "FanOut",
    "parse_executor_spec",
    "create_backend",
    "register_backend",
    "registered_backends",
    "chunk_evenly",
]
