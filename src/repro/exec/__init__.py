"""One execution-backend API for every parallel stage of the pipeline.

``repro.exec`` unifies what used to be three disjoint pool implementations —
the graph builder's process pool, the Map-Reduce engine's thread pool, and the
serving daemon's hand-rolled worker threads — behind a single
:class:`ExecutionBackend` protocol selected by spec string
(:attr:`repro.core.config.SynthesisConfig.executor`): ``"serial"``,
``"thread:8"``, ``"process:4"``, ``"cluster:N"`` (N isolated single-worker
process replicas — the serving cluster's execution shape).  Every backend
produces byte-identical results to :class:`SerialBackend`; only the
wall-clock differs.

:class:`FanOut` (:mod:`repro.exec.fanout`) is the shared gate + chunk +
serial-fallback skeleton the fan-out call sites (scoring, extraction
sharding, the Map-Reduce map phase) run their backends through.

Pooled backends are **fault-tolerant**: a broken process pool is rebuilt and
only the lost work re-dispatched, transient task failures retry under a
:class:`~repro.faults.RetryPolicy` (:data:`DEFAULT_RETRY_POLICY` unless the
caller tunes it), and past the retry budget the backend completes the
remaining work inline with a recorded ``fallback_reason`` — results stay
byte-identical through every rung.
"""

from repro.exec.backend import (
    DEFAULT_RETRY_POLICY,
    ClusterBackend,
    ExecutionBackend,
    ExecutorSpecError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    chunk_evenly,
    create_backend,
    parse_executor_spec,
    register_backend,
    registered_backends,
)
from repro.exec.fanout import FanOut
from repro.faults.retry import RetryPolicy

__all__ = [
    "ExecutionBackend",
    "ExecutorSpecError",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ClusterBackend",
    "FanOut",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "parse_executor_spec",
    "create_backend",
    "register_backend",
    "registered_backends",
    "chunk_evenly",
]
