"""Pluggable execution backends for every parallel stage of the pipeline.

The synthesis pipeline is embarrassingly parallel at every stage — blocked-pair
scoring (paper §4.1 "Efficiency"), the Map-Reduce map phase (§3), candidate
extraction sharding, and batch serving — but each stage historically grew its
own pool implementation behind one ``num_workers`` integer.  This module is the
single abstraction they all share:

* :class:`ExecutionBackend` — the protocol: ``map_blocks`` (ordered fan-out
  over pre-chunked blocks), ``map_unordered`` (completion-order fan-out for
  callers that reassemble by key), ``submit`` (one task, a
  :class:`~concurrent.futures.Future` back), and ``close`` / context-manager
  lifecycle.
* :class:`SerialBackend` — the deterministic in-process reference every other
  backend must be byte-identical to.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``; tasks share the caller's
  objects, so closures are fine.  Under CPython's GIL this buys throughput only
  for tasks that release the GIL (I/O, C extensions).
* :class:`ProcessBackend` — a ``ProcessPoolExecutor`` for CPU-bound work that
  must scale past the GIL.  Tasks must be picklable envelopes; per-worker state
  (scorers, serving indexes) is built by a spawn-safe ``initializer`` from
  picklable ``initargs`` — never inherited ambiently from the parent.

Backends are selected by **spec string** — ``"serial"``, ``"thread:8"``,
``"process:4"`` — via :func:`create_backend`; :func:`register_backend` lets
experiments plug in custom kinds (e.g. a cluster client) without touching the
call sites.  Pools are created lazily on first use, so constructing a backend
that ends up serving nothing costs nothing.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Any

__all__ = [
    "ExecutorSpecError",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "parse_executor_spec",
    "create_backend",
    "register_backend",
    "registered_backends",
    "chunk_evenly",
]


class ExecutorSpecError(ValueError):
    """An executor spec string does not name a usable backend."""


def parse_executor_spec(spec: str) -> tuple[str, int]:
    """Parse ``"kind"`` / ``"kind:workers"`` into ``(kind, workers)``.

    ``workers`` defaults to ``os.cpu_count()`` for parallel kinds and is always
    ``1`` for ``"serial"``.  The kind is validated against the registry, so a
    typo fails at config-validation time instead of deep inside a build.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ExecutorSpecError(
            f"executor spec must be a non-empty string like 'thread:8', got {spec!r}"
        )
    kind, separator, count = spec.strip().partition(":")
    kind = kind.strip().lower()
    if kind not in _BACKENDS:
        raise ExecutorSpecError(
            f"unknown executor kind {kind!r}; registered kinds: "
            f"{sorted(_BACKENDS)}"
        )
    if separator and not count.strip():
        # "process:" is a mangled count, not a request for the default width.
        raise ExecutorSpecError(
            f"executor spec {spec!r} has a ':' but no worker count"
        )
    if count:
        try:
            workers = int(count)
        except ValueError:
            raise ExecutorSpecError(
                f"executor worker count must be an integer, got {count!r}"
            ) from None
        if workers < 1:
            raise ExecutorSpecError(
                f"executor worker count must be >= 1, got {workers}"
            )
    else:
        workers = 1 if kind == "serial" else (os.cpu_count() or 1)
    if kind == "serial" and workers != 1:
        raise ExecutorSpecError(
            f"the serial backend is single-worker by definition, got {spec!r}"
        )
    return kind, workers


def chunk_evenly(items: Sequence[Any], chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``chunks`` contiguous blocks.

    Contiguity matters: callers that concatenate block results in block order
    recover the exact sequential output ordering.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    count = min(len(items), chunks)
    if count == 0:
        return []
    size = (len(items) + count - 1) // count
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class ExecutionBackend:
    """The execution API every parallel stage of the pipeline targets.

    A backend is *where* tasks run; the contract is that running the same pure
    tasks on any backend yields the same results — callers own determinism by
    either consuming :meth:`map_blocks` output in block order or keying
    :meth:`map_unordered` results so completion order cannot matter.
    """

    kind: str = "base"

    def __init__(
        self,
        workers: int = 1,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs

    # -- Protocol ----------------------------------------------------------------------
    def map_blocks(
        self, fn: Callable[[Any], Any], blocks: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every block; results come back **in block order**."""
        raise NotImplementedError

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results as they complete.

        Order is unspecified; callers must reassemble by a key carried in the
        result (the scoring fan-out keys results by table-index pair).
        """
        raise NotImplementedError

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule one call and return its :class:`Future`."""
        raise NotImplementedError

    def close(self, wait: bool = True) -> None:
        """Tear the backend down.  Idempotent.

        With ``wait=False`` the call returns immediately; tasks already
        submitted still run to completion (nothing is cancelled), which is what
        the daemon's generation retirement relies on.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Deterministic single-threaded reference backend.

    Runs everything inline, in submission order, on the calling thread.  The
    optional initializer runs once before the first task so worker functions
    that read initializer-installed state behave identically to the pooled
    backends.
    """

    kind = "serial"

    def __init__(
        self,
        workers: int = 1,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        super().__init__(1, initializer=initializer, initargs=initargs)
        self._initialized = False

    def _ensure_initialized(self) -> None:
        if not self._initialized and self._initializer is not None:
            self._initializer(*self._initargs)
        self._initialized = True

    def map_blocks(self, fn, blocks):
        self._ensure_initialized()
        return [fn(block) for block in blocks]

    def map_unordered(self, fn, items):
        self._ensure_initialized()
        for item in items:
            yield fn(item)

    def submit(self, fn, /, *args, **kwargs):
        self._ensure_initialized()
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:
            future.set_exception(exc)
        return future


class _PoolBackend(ExecutionBackend):
    """Shared plumbing for the two ``concurrent.futures``-based backends."""

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        super().__init__(
            workers if workers is not None else (os.cpu_count() or 1),
            initializer=initializer,
            initargs=initargs,
        )
        self._pool = None
        self._pool_lock = threading.Lock()
        self._closed = False

    @property
    def pool(self):
        """The underlying executor, created lazily on first use.

        Creation is lock-guarded: backends are shared across threads (the
        daemon's dispatchers all submit to one per-generation backend), and an
        unguarded check-then-create would let two first submitters build two
        executors, orphaning one that ``close()`` could never shut down.
        """
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if self._pool is None:
            with self._pool_lock:
                if self._closed:
                    raise RuntimeError(f"{type(self).__name__} is closed")
                if self._pool is None:
                    self._pool = self._make_pool()
        return self._pool

    def map_blocks(self, fn, blocks):
        return list(self.pool.map(fn, blocks))

    def map_unordered(self, fn, items):
        pending = {self.pool.submit(fn, item) for item in items}
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        finally:
            for future in pending:
                future.cancel()

    def submit(self, fn, /, *args, **kwargs):
        return self.pool.submit(fn, *args, **kwargs)

    def close(self, wait: bool = True) -> None:
        with self._pool_lock:
            self._closed = True
            pool = self._pool
        if pool is not None:
            pool.shutdown(wait=wait)


class ThreadBackend(_PoolBackend):
    """Thread-pool backend: shares the caller's memory, subject to the GIL."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-exec",
            initializer=self._initializer,
            initargs=self._initargs,
        )


class ProcessBackend(_PoolBackend):
    """Process-pool backend: true CPU parallelism, picklable task envelopes.

    Per-worker state must be built by the ``initializer`` from picklable
    ``initargs`` (spawn-safe: nothing is assumed to be inherited by fork), and
    task functions must be module-level so they pickle by reference.  Callers
    are expected to catch environmental failures (pickling, sandboxed
    ``/dev/shm``, broken pools) and fall back to an equivalent backend — the
    results are identical everywhere, only the wall-clock differs.
    """

    kind = "process"

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        start_method: str | None = None,
    ) -> None:
        super().__init__(workers, initializer=initializer, initargs=initargs)
        self._start_method = start_method

    def _make_pool(self):
        import multiprocessing

        method = self._start_method
        if method is None and threading.active_count() > 1:
            # Forking a multi-threaded process can snapshot another thread's
            # held lock into the child and deadlock the worker before it even
            # runs its initializer — and a hang never trips the callers'
            # fall-back-on-exception paths.  Pool creation is lazy, so this
            # check runs right before the processes start: single-threaded
            # pipelines keep the cheap platform default (fork on Linux), while
            # anything running beside live threads (a daemon refreshing its
            # artifact underneath itself) gets the spawn-safe path.
            method = "spawn"
        context = multiprocessing.get_context(method) if method else None
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=self._initializer,
            initargs=self._initargs,
        )


# ---------------------------------------------------------------------------------------
# Registry + spec-driven construction
# ---------------------------------------------------------------------------------------
_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def register_backend(kind: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend kind for spec strings like ``"<kind>:<n>"``.

    ``factory`` is called as ``factory(workers, initializer=..., initargs=...)``
    and must return an :class:`ExecutionBackend`.
    """
    if not kind or ":" in kind:
        raise ValueError(f"backend kind must be a bare name, got {kind!r}")
    _BACKENDS[kind.lower()] = factory


def registered_backends() -> tuple[str, ...]:
    """The registered backend kinds, sorted."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    spec: str,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> ExecutionBackend:
    """Build the backend named by ``spec`` (e.g. ``"process:8"``)."""
    kind, workers = parse_executor_spec(spec)
    return _BACKENDS[kind](workers, initializer=initializer, initargs=initargs)
