"""Pluggable execution backends for every parallel stage of the pipeline.

The synthesis pipeline is embarrassingly parallel at every stage — blocked-pair
scoring (paper §4.1 "Efficiency"), the Map-Reduce map phase (§3), candidate
extraction sharding, and batch serving — but each stage historically grew its
own pool implementation behind one ``num_workers`` integer.  This module is the
single abstraction they all share:

* :class:`ExecutionBackend` — the protocol: ``map_blocks`` (ordered fan-out
  over pre-chunked blocks), ``map_unordered`` (completion-order fan-out for
  callers that reassemble by key), ``submit`` (one task, a
  :class:`~concurrent.futures.Future` back), and ``close`` / context-manager
  lifecycle.
* :class:`SerialBackend` — the deterministic in-process reference every other
  backend must be byte-identical to.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``; tasks share the caller's
  objects, so closures are fine.  Under CPython's GIL this buys throughput only
  for tasks that release the GIL (I/O, C extensions).
* :class:`ProcessBackend` — a ``ProcessPoolExecutor`` for CPU-bound work that
  must scale past the GIL.  Tasks must be picklable envelopes; per-worker state
  (scorers, serving indexes) is built by a spawn-safe ``initializer`` from
  picklable ``initargs`` — never inherited ambiently from the parent.

Backends are selected by **spec string** — ``"serial"``, ``"thread:8"``,
``"process:4"`` — via :func:`create_backend`; :func:`register_backend` lets
experiments plug in custom kinds (e.g. a cluster client) without touching the
call sites.  Pools are created lazily on first use, so constructing a backend
that ends up serving nothing costs nothing.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from typing import Any

from repro.faults.plan import InjectedFault, active_injector
from repro.faults.retry import RetryPolicy

__all__ = [
    "ExecutorSpecError",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ClusterBackend",
    "DEFAULT_RETRY_POLICY",
    "parse_executor_spec",
    "create_backend",
    "register_backend",
    "registered_backends",
    "chunk_evenly",
]

#: Default resilience budget for pooled backends: two pool rebuilds / per-task
#: retries with a short backoff, retrying only the transient exception classes
#: (injected chaos faults and OS-level I/O hiccups).  Pipeline tasks are pure,
#: so retrying a deterministic task error would just repeat it — those still
#: propagate immediately.
DEFAULT_RETRY_POLICY = RetryPolicy(
    attempts=2,
    base_seconds=0.02,
    max_seconds=0.5,
    retry_on=(InjectedFault, OSError),
)


def _injected_worker_crash() -> None:
    """Kill the worker process hosting this task (fault injection only).

    ``os._exit`` skips all cleanup, exactly like an OOM kill or segfault: the
    pool genuinely breaks and every sibling future resolves with
    :class:`~concurrent.futures.process.BrokenProcessPool`, which is the
    recovery path the injection exists to exercise.
    """
    os._exit(73)


def _faulty_call(
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    delay: float,
    error: bool,
) -> Any:
    """Run ``fn`` with an injected delay and/or transient failure.

    Module-level so it pickles by reference into process-pool workers.
    """
    if delay:
        time.sleep(delay)
    if error:
        raise InjectedFault(
            f"injected task error in {getattr(fn, '__name__', fn)!r}"
        )
    return fn(*args, **kwargs)


class ExecutorSpecError(ValueError):
    """An executor spec string does not name a usable backend."""


def parse_executor_spec(spec: str) -> tuple[str, int]:
    """Parse ``"kind"`` / ``"kind:workers"`` into ``(kind, workers)``.

    ``workers`` defaults to ``os.cpu_count()`` for parallel kinds and is always
    ``1`` for ``"serial"``.  The kind is validated against the registry, so a
    typo fails at config-validation time instead of deep inside a build.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ExecutorSpecError(
            f"executor spec must be a non-empty string like 'thread:8', got {spec!r}"
        )
    kind, separator, count = spec.strip().partition(":")
    kind = kind.strip().lower()
    if kind not in _BACKENDS:
        raise ExecutorSpecError(
            f"unknown executor kind {kind!r}; registered kinds: "
            f"{sorted(_BACKENDS)}"
        )
    if separator and not count.strip():
        # "process:" is a mangled count, not a request for the default width.
        raise ExecutorSpecError(
            f"executor spec {spec!r} has a ':' but no worker count"
        )
    if count:
        try:
            workers = int(count)
        except ValueError:
            raise ExecutorSpecError(
                f"executor worker count must be an integer, got {count!r}"
            ) from None
        if workers < 1:
            raise ExecutorSpecError(
                f"executor worker count must be >= 1, got {workers}"
            )
    else:
        workers = 1 if kind == "serial" else (os.cpu_count() or 1)
    if kind == "serial" and workers != 1:
        raise ExecutorSpecError(
            f"the serial backend is single-worker by definition, got {spec!r}"
        )
    return kind, workers


def chunk_evenly(items: Sequence[Any], chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``chunks`` contiguous blocks.

    Contiguity matters: callers that concatenate block results in block order
    recover the exact sequential output ordering.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    count = min(len(items), chunks)
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    result: list[list[Any]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        result.append(list(items[start : start + size]))
        start += size
    return result


class ExecutionBackend:
    """The execution API every parallel stage of the pipeline targets.

    A backend is *where* tasks run; the contract is that running the same pure
    tasks on any backend yields the same results — callers own determinism by
    either consuming :meth:`map_blocks` output in block order or keying
    :meth:`map_unordered` results so completion order cannot matter.
    """

    kind: str = "base"

    # -- Resilience telemetry (class-level defaults; pooled backends shadow these
    #    with live instance counters) ---------------------------------------------------
    #: Times a broken pool was rebuilt and its lost work re-dispatched.
    crash_recoveries: int = 0
    #: Individual tasks re-run after a transient (policy-covered) failure.
    tasks_retried: int = 0
    #: Faults this backend injected on behalf of the active FaultInjector.
    faults_injected: int = 0
    #: Why the backend degraded to inline execution (``None`` while healthy).
    fallback_reason: str | None = None

    def __init__(
        self,
        workers: int = 1,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )

    # -- Protocol ----------------------------------------------------------------------
    def map_blocks(
        self, fn: Callable[[Any], Any], blocks: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every block; results come back **in block order**."""
        raise NotImplementedError

    def map_unordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:
        """Apply ``fn`` to every item, yielding results as they complete.

        Order is unspecified; callers must reassemble by a key carried in the
        result (the scoring fan-out keys results by table-index pair).
        """
        raise NotImplementedError

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule one call and return its :class:`Future`."""
        raise NotImplementedError

    def call(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Any:
        """Run one call to completion, resiliently where the backend can be.

        The synchronous sibling of :meth:`submit`: pooled backends override it
        to survive pool breakage (rebuild + re-dispatch, then inline
        degradation), so callers that need *an answer* rather than a future —
        the serving daemon — get the full recovery ladder.
        """
        return self.submit(fn, *args, **kwargs).result()

    def close(self, wait: bool = True) -> None:
        """Tear the backend down.  Idempotent.

        With ``wait=False`` the call returns immediately; tasks already
        submitted still run to completion (nothing is cancelled), which is what
        the daemon's generation retirement relies on.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Deterministic single-threaded reference backend.

    Runs everything inline, in submission order, on the calling thread.  The
    optional initializer runs once before the first task so worker functions
    that read initializer-installed state behave identically to the pooled
    backends.
    """

    kind = "serial"

    def __init__(
        self,
        workers: int = 1,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(
            1, initializer=initializer, initargs=initargs, retry_policy=retry_policy
        )
        self._initialized = False

    def _ensure_initialized(self) -> None:
        if not self._initialized and self._initializer is not None:
            self._initializer(*self._initargs)
        self._initialized = True

    def map_blocks(self, fn, blocks):
        self._ensure_initialized()
        return [fn(block) for block in blocks]

    def map_unordered(self, fn, items):
        self._ensure_initialized()
        for item in items:
            yield fn(item)

    def submit(self, fn, /, *args, **kwargs):
        self._ensure_initialized()
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:
            future.set_exception(exc)
        return future


class _PoolBackend(ExecutionBackend):
    """Shared plumbing for the two ``concurrent.futures``-based backends.

    Beyond pooling, this is where the fault-tolerance ladder lives.  Every
    fan-out entry point (:meth:`map_blocks`, :meth:`map_unordered`,
    :meth:`call`) runs through the same recovery loop:

    1. **Per-task retry** — a task failing with an exception the
       :class:`RetryPolicy` covers (transient by construction: injected
       faults, OS-level I/O errors) is re-dispatched after backoff, up to the
       policy's budget.  Deterministic task errors propagate immediately.
    2. **Pool rebuild** — a broken pool (worker killed mid-task) resolves all
       in-flight futures with :class:`~concurrent.futures.BrokenExecutor`;
       the loop collects whatever finished, rebuilds the pool after backoff,
       and re-dispatches **only the lost items**.
    3. **Inline degradation** — once pool failures exhaust the retry budget,
       the backend stops trusting pools entirely: it runs the initializer in
       the calling process and completes the remaining items serially, with
       the reason recorded in :attr:`fallback_reason`.

    Tasks are pure, so every rung produces byte-identical results — the
    ladder trades wall-clock for availability, never answers.  Fault
    injection (when a :class:`~repro.faults.FaultInjector` is active) happens
    at dispatch time in the submitting thread; recovery rungs are never
    injected, so degradation always lands somewhere that works.
    """

    #: Exception types that mean "the pool is dead", not "the task failed".
    _pool_failure_types: tuple[type[BaseException], ...] = (BrokenExecutor,)
    #: Whether the active FaultInjector may kill this backend's workers
    #: (meaningful only where workers are processes).
    _injects_crashes: bool = False

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(
            workers if workers is not None else (os.cpu_count() or 1),
            initializer=initializer,
            initargs=initargs,
            retry_policy=retry_policy,
        )
        self._pool = None
        self._pool_lock = threading.Lock()
        self._closed = False
        self._pool_failures = 0
        self._degraded = False
        self._inline_initialized = False
        self.crash_recoveries = 0
        self.tasks_retried = 0
        self.faults_injected = 0
        self.fallback_reason = None

    @property
    def pool(self):
        """The underlying executor, created lazily on first use.

        Creation is lock-guarded: backends are shared across threads (the
        daemon's dispatchers all submit to one per-generation backend), and an
        unguarded check-then-create would let two first submitters build two
        executors, orphaning one that ``close()`` could never shut down.
        """
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if self._pool is None:
            with self._pool_lock:
                if self._closed:
                    raise RuntimeError(f"{type(self).__name__} is closed")
                if self._pool is None:
                    self._pool = self._make_pool()
        return self._pool

    # -- Fault-injecting dispatch ------------------------------------------------------
    def _dispatch(self, fn, args: tuple, kwargs: dict) -> Future:
        """Submit one task, consulting the active fault injector first.

        Draws happen here, in the submitting thread, so the fault schedule is
        a deterministic function of dispatch order — never of worker timing.
        """
        injector = active_injector()
        if injector is not None:
            if self._injects_crashes and injector.worker_crash():
                self.faults_injected += 1
                # The real task is NOT submitted: the crash destroys the pool,
                # this future resolves broken, and the recovery loop
                # re-dispatches the item — exactly an OOM-killed worker.
                return self.pool.submit(_injected_worker_crash)
            delay = injector.slow_call()
            error = injector.task_error()
            if delay or error:
                self.faults_injected += 1
                return self.pool.submit(_faulty_call, fn, args, kwargs, delay, error)
        return self.pool.submit(fn, *args, **kwargs)

    # -- Recovery ladder ---------------------------------------------------------------
    def _note_pool_failure(self) -> None:
        """One pool breakage: rebuild after backoff, or degrade past budget."""
        broken = self._pool
        self._pool_failures += 1
        if self._pool_failures > self.retry_policy.attempts:
            self._degraded = True
            self.fallback_reason = (
                f"{self.kind} pool broke {self._pool_failures} time(s), "
                f"exhausting the retry budget ({self.retry_policy.attempts}); "
                "completing remaining work inline"
            )
            return
        time.sleep(self.retry_policy.delay(self._pool_failures))
        with self._pool_lock:
            if not self._closed and self._pool is broken:
                # Compare-and-swap: another thread may have rebuilt already,
                # and clearing *its* fresh pool would orphan it.
                self._pool = None
        if broken is not None:
            broken.shutdown(wait=False)
        self.crash_recoveries += 1

    def _ensure_inline_initialized(self) -> None:
        """Run the worker initializer in this process (degraded mode only).

        Initializers install worker state in module globals; running one in
        the parent is safe — it is exactly what SerialBackend does.
        """
        if not self._inline_initialized:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._inline_initialized = True

    def _run_resilient(self, fn, items: Sequence[Any]) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, result)`` in completion order, surviving pool death.

        The engine behind :meth:`map_blocks` and :meth:`map_unordered`: tracks
        which indices completed, treats :attr:`_pool_failure_types` as lost
        work to re-dispatch, applies the per-task retry policy to transient
        task failures, and finishes inline once the backend degrades.
        """
        total = len(items)
        completed: set[int] = set()
        task_attempts: dict[int, int] = {}
        pending: dict[Future, int] = {}

        def settle(future: Future, index: int) -> tuple[str, Any]:
            # One future's outcome -> ("ok", result) | ("lost", None) |
            # ("retry", None); fatal task errors raise.
            try:
                return "ok", future.result()
            except self._pool_failure_types:
                return "lost", None
            except BaseException as exc:
                attempts = task_attempts.get(index, 0)
                if attempts < self.retry_policy.attempts and self.retry_policy.retries(
                    exc
                ):
                    task_attempts[index] = attempts + 1
                    self.tasks_retried += 1
                    time.sleep(self.retry_policy.delay(attempts + 1))
                    return "retry", None
                raise

        try:
            while len(completed) < total:
                if self._degraded:
                    self._ensure_inline_initialized()
                    for index in range(total):
                        if index not in completed:
                            completed.add(index)
                            yield index, fn(items[index])
                    return
                pool_broke = False
                try:
                    in_flight = set(pending.values())
                    for index in range(total):
                        if index not in completed and index not in in_flight:
                            pending[self._dispatch(fn, (items[index],), {})] = index
                except self._pool_failure_types:
                    pool_broke = True
                if pending and not pool_broke:
                    done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        outcome, result = settle(future, index)
                        if outcome == "ok":
                            completed.add(index)
                            yield index, result
                        elif outcome == "lost":
                            pool_broke = True
                if pool_broke:
                    # A broken pool resolves every in-flight future; drain them
                    # all so finished work is kept and lost work re-dispatches.
                    if pending:
                        done, _ = wait(set(pending))
                        for future in done:
                            index = pending.pop(future)
                            outcome, result = settle(future, index)
                            if outcome == "ok":
                                completed.add(index)
                                yield index, result
                    self._note_pool_failure()
        except BaseException:
            for future in pending:
                future.cancel()
            raise

    def map_blocks(self, fn, blocks):
        blocks = list(blocks)
        results: list[Any] = [None] * len(blocks)
        for index, result in self._run_resilient(fn, blocks):
            results[index] = result
        return results

    def map_unordered(self, fn, items):
        for _, result in self._run_resilient(fn, list(items)):
            yield result

    def submit(self, fn, /, *args, **kwargs):
        return self._dispatch(fn, args, kwargs)

    def call(self, fn, /, *args, **kwargs):
        """One call through the full recovery ladder (see class docstring)."""
        task_attempts = 0
        while True:
            if self._degraded:
                self._ensure_inline_initialized()
                return fn(*args, **kwargs)
            try:
                return self._dispatch(fn, args, kwargs).result()
            except self._pool_failure_types:
                self._note_pool_failure()
            except BaseException as exc:
                task_attempts += 1
                if task_attempts > self.retry_policy.attempts or not (
                    self.retry_policy.retries(exc)
                ):
                    raise
                self.tasks_retried += 1
                time.sleep(self.retry_policy.delay(task_attempts))

    def close(self, wait: bool = True) -> None:
        with self._pool_lock:
            self._closed = True
            pool = self._pool
        if pool is not None:
            pool.shutdown(wait=wait)


class ThreadBackend(_PoolBackend):
    """Thread-pool backend: shares the caller's memory, subject to the GIL."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-exec",
            initializer=self._initializer,
            initargs=self._initargs,
        )


class ProcessBackend(_PoolBackend):
    """Process-pool backend: true CPU parallelism, picklable task envelopes.

    Per-worker state must be built by the ``initializer`` from picklable
    ``initargs`` (spawn-safe: nothing is assumed to be inherited by fork), and
    task functions must be module-level so they pickle by reference.  Callers
    are expected to catch environmental failures (pickling, sandboxed
    ``/dev/shm``, broken pools) and fall back to an equivalent backend — the
    results are identical everywhere, only the wall-clock differs.
    """

    kind = "process"
    _injects_crashes = True

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        start_method: str | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(
            workers,
            initializer=initializer,
            initargs=initargs,
            retry_policy=retry_policy,
        )
        self._start_method = start_method

    def _make_pool(self):
        import multiprocessing

        method = self._start_method
        if method is None and threading.active_count() > 1:
            # Forking a multi-threaded process can snapshot another thread's
            # held lock into the child and deadlock the worker before it even
            # runs its initializer — and a hang never trips the callers'
            # fall-back-on-exception paths.  Pool creation is lazy, so this
            # check runs right before the processes start: single-threaded
            # pipelines keep the cheap platform default (fork on Linux), while
            # anything running beside live threads (a daemon refreshing its
            # artifact underneath itself) gets the spawn-safe path.
            method = "spawn"
        context = multiprocessing.get_context(method) if method else None
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=self._initializer,
            initargs=self._initargs,
        )


class ClusterBackend(ExecutionBackend):
    """N independent single-worker process replicas behind one backend.

    Where :class:`ProcessBackend` is one pool of ``N`` workers, ``cluster:N``
    is ``N`` pools of one worker each — the execution-layer shape of a serving
    *cluster*: each replica has its own interpreter, its own initializer-built
    state, and its own failure domain.  A crashed replica is rebuilt (and its
    lost task re-dispatched) by that child's own recovery ladder without
    disturbing the other ``N - 1`` replicas, which is exactly the isolation
    :class:`repro.cluster.ClusterRouter` wants when ``SynthesisConfig.executor``
    / ``REPRO_EXECUTOR`` says ``"cluster:N"``.

    Tasks are routed round-robin (``map_blocks`` stripes blocks across
    replicas and stitches results back in block order); every dispatch goes
    through the child's :meth:`~_PoolBackend.call` so the full retry /
    rebuild / inline-degradation ladder applies per replica.  Telemetry
    counters aggregate across children.
    """

    kind = "cluster"

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(
            workers if workers is not None else (os.cpu_count() or 1),
            initializer=initializer,
            initargs=initargs,
            retry_policy=retry_policy,
        )
        self._children = [
            ProcessBackend(
                1,
                initializer=initializer,
                initargs=initargs,
                retry_policy=retry_policy,
            )
            for _ in range(self.workers)
        ]
        # itertools.count is effectively atomic under CPython, which is all the
        # round-robin cursor needs — perfect balance is not a correctness
        # property here, per-child serialization is (each child pool has one
        # worker, so even a skewed assignment stays ordered within a child).
        self._cursor = itertools.count()

    def _child(self) -> ProcessBackend:
        return self._children[next(self._cursor) % len(self._children)]

    # -- Aggregated resilience telemetry ------------------------------------------------
    @property
    def crash_recoveries(self) -> int:  # type: ignore[override]
        return sum(child.crash_recoveries for child in self._children)

    @property
    def tasks_retried(self) -> int:  # type: ignore[override]
        return sum(child.tasks_retried for child in self._children)

    @property
    def faults_injected(self) -> int:  # type: ignore[override]
        return sum(child.faults_injected for child in self._children)

    @property
    def fallback_reason(self) -> str | None:  # type: ignore[override]
        for child in self._children:
            if child.fallback_reason is not None:
                return child.fallback_reason
        return None

    # -- Protocol -----------------------------------------------------------------------
    def map_blocks(self, fn, blocks):
        blocks = list(blocks)
        if not blocks:
            return []
        lanes = min(len(self._children), len(blocks))
        results: list[Any] = [None] * len(blocks)

        def run_lane(lane: int) -> list[tuple[int, Any]]:
            child = self._children[lane]
            return [
                (position, child.call(fn, blocks[position]))
                for position in range(lane, len(blocks), lanes)
            ]

        with ThreadPoolExecutor(
            max_workers=lanes, thread_name_prefix="repro-cluster"
        ) as dispatcher:
            for lane_results in dispatcher.map(run_lane, range(lanes)):
                for position, outcome in lane_results:
                    results[position] = outcome
        return results

    def map_unordered(self, fn, items):
        items = list(items)
        if not items:
            return
        lanes = len(self._children)
        with ThreadPoolExecutor(
            max_workers=lanes, thread_name_prefix="repro-cluster"
        ) as dispatcher:
            futures = [
                dispatcher.submit(self._children[index % lanes].call, fn, item)
                for index, item in enumerate(items)
            ]
            for future in as_completed(futures):
                yield future.result()

    def submit(self, fn, /, *args, **kwargs):
        return self._child().submit(fn, *args, **kwargs)

    def call(self, fn, /, *args, **kwargs):
        return self._child().call(fn, *args, **kwargs)

    def close(self, wait: bool = True) -> None:
        for child in self._children:
            child.close(wait=wait)


# ---------------------------------------------------------------------------------------
# Registry + spec-driven construction
# ---------------------------------------------------------------------------------------
_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "cluster": ClusterBackend,
}


def register_backend(kind: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a custom backend kind for spec strings like ``"<kind>:<n>"``.

    ``factory`` is called as ``factory(workers, initializer=..., initargs=...)``
    and must return an :class:`ExecutionBackend`.
    """
    if not kind or ":" in kind:
        raise ValueError(f"backend kind must be a bare name, got {kind!r}")
    _BACKENDS[kind.lower()] = factory


def registered_backends() -> tuple[str, ...]:
    """The registered backend kinds, sorted."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    spec: str,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    retry_policy: RetryPolicy | None = None,
) -> ExecutionBackend:
    """Build the backend named by ``spec`` (e.g. ``"process:8"``).

    ``retry_policy`` tunes the pooled backends' recovery ladder; ``None``
    keeps :data:`DEFAULT_RETRY_POLICY`.  It is forwarded only when set, so
    custom factories registered under the documented
    ``factory(workers, initializer=..., initargs=...)`` contract keep working.
    """
    kind, workers = parse_executor_spec(spec)
    kwargs: dict[str, Any] = {"initializer": initializer, "initargs": initargs}
    if retry_policy is not None:
        kwargs["retry_policy"] = retry_policy
    return _BACKENDS[kind](workers, **kwargs)
