"""Approximate string matching utilities (paper §4.1, Appendix B)."""

from repro.text.edit_distance import (
    banded_edit_distance,
    edit_distance,
    fractional_threshold,
    within_edit_threshold,
)
from repro.text.matching import ValueMatcher, normalize_value
from repro.text.synonyms import SynonymDictionary

__all__ = [
    "banded_edit_distance",
    "edit_distance",
    "fractional_threshold",
    "within_edit_threshold",
    "ValueMatcher",
    "normalize_value",
    "SynonymDictionary",
]
