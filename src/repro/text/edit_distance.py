"""Edit distance with a banded dynamic program (paper Appendix B, Algorithm 2).

The paper matches cell values approximately with an edit-distance threshold that is
*fractional* in the string length (``f_ed``, default 0.2) and capped at a fixed
constant ``k_ed`` (default 10).  Because the allowed distance is small, the dynamic
program only needs to fill a narrow diagonal band of the matrix, in the spirit of
Ukkonen's algorithm, which turns an ``O(|v1|·|v2|)`` computation into
``O(θ_ed · min(|v1|, |v2|))``.
"""

from __future__ import annotations

__all__ = [
    "edit_distance",
    "banded_edit_distance",
    "fractional_threshold",
    "within_edit_threshold",
]

#: Default fractional edit-distance threshold (paper: ``f_ed = 0.2``).
DEFAULT_FRACTION = 0.2

#: Default absolute cap on the edit-distance threshold (paper: ``k_ed = 10``).
DEFAULT_CAP = 10


def edit_distance(v1: str, v2: str) -> int:
    """Return the exact Levenshtein distance between ``v1`` and ``v2``.

    This is the unbanded reference implementation, used in tests as an oracle for
    :func:`banded_edit_distance` and for short strings where the band would cover
    the full matrix anyway.
    """
    if v1 == v2:
        return 0
    if not v1:
        return len(v2)
    if not v2:
        return len(v1)
    if len(v1) > len(v2):
        v1, v2 = v2, v1
    previous = list(range(len(v1) + 1))
    for j, cj in enumerate(v2, start=1):
        current = [j] + [0] * len(v1)
        for i, ci in enumerate(v1, start=1):
            cost = 0 if ci == cj else 1
            current[i] = min(
                previous[i] + 1,       # deletion
                current[i - 1] + 1,    # insertion
                previous[i - 1] + cost,  # substitution
            )
        previous = current
    return previous[-1]


def banded_edit_distance(v1: str, v2: str, threshold: int) -> int | None:
    """Compute the edit distance between ``v1`` and ``v2`` restricted to a band.

    Only cells within ``threshold`` of the main diagonal are filled (Algorithm 2 in
    the paper).  If the true distance exceeds ``threshold`` the function returns
    ``None``; otherwise it returns the exact distance.

    Parameters
    ----------
    v1, v2:
        Strings to compare.
    threshold:
        Maximum distance of interest.  Must be non-negative.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    if v1 == v2:
        return 0
    # A length difference larger than the band already exceeds the threshold.
    if abs(len(v1) - len(v2)) > threshold:
        return None
    if len(v1) > len(v2):
        v1, v2 = v2, v1
    n, m = len(v1), len(v2)
    if n == 0:
        return m if m <= threshold else None

    inf = threshold + 1
    # previous[j] holds dist[i-1][j]; band restricted to |i - j| <= threshold.
    previous = [j if j <= threshold else inf for j in range(m + 1)]
    for i in range(1, n + 1):
        lower = max(1, i - threshold)
        upper = min(m, i + threshold)
        current = [inf] * (m + 1)
        if lower == 1:
            current[0] = i if i <= threshold else inf
        for j in range(lower, upper + 1):
            cost = 0 if v1[i - 1] == v2[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best
        previous = current
    distance = previous[m]
    return distance if distance <= threshold else None


def fractional_threshold(
    v1: str,
    v2: str,
    fraction: float = DEFAULT_FRACTION,
    cap: int = DEFAULT_CAP,
) -> int:
    """Return the paper's dynamic edit-distance threshold ``θ_ed(v1, v2)``.

    ``θ_ed = min(⌊|v1|·f_ed⌋, ⌊|v2|·f_ed⌋, k_ed)`` — short strings such as country
    codes effectively require an exact match, while long strings tolerate small
    variations (footnote marks, parenthesised qualifiers, ...).
    """
    if fraction < 0:
        raise ValueError(f"fraction must be non-negative, got {fraction}")
    if cap < 0:
        raise ValueError(f"cap must be non-negative, got {cap}")
    return min(int(len(v1) * fraction), int(len(v2) * fraction), cap)


def within_edit_threshold(
    v1: str,
    v2: str,
    fraction: float = DEFAULT_FRACTION,
    cap: int = DEFAULT_CAP,
) -> bool:
    """Return ``True`` if ``v1`` and ``v2`` match under the fractional threshold."""
    if v1 == v2:
        return True
    threshold = fractional_threshold(v1, v2, fraction=fraction, cap=cap)
    if threshold == 0:
        return False
    return banded_edit_distance(v1, v2, threshold) is not None
