"""Synonym dictionary support (paper §4.1, "Synonyms").

The paper optionally consults an external synonym feed so that, e.g.,
``"US Virgin Islands"`` and ``"United States Virgin Islands"`` boost positive
compatibility instead of registering as misses, and so that known-synonymous right
hand sides are not reported as conflicts during conflict resolution.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.text.matching import normalize_value

__all__ = ["SynonymDictionary"]


class SynonymDictionary:
    """A union-find backed dictionary of synonymous surface forms.

    Synonym groups are closed transitively: adding ``(a, b)`` and ``(b, c)`` makes
    ``a`` and ``c`` synonyms as well, mirroring how entity synonym feeds behave.
    """

    def __init__(self, groups: Iterable[Iterable[str]] | None = None) -> None:
        self._parent: dict[str, str] = {}
        if groups is not None:
            for group in groups:
                self.add_group(group)

    def _key(self, value: str) -> str:
        return normalize_value(value)

    def _find(self, key: str) -> str:
        root = key
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(key, key) != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def add_pair(self, first: str, second: str) -> None:
        """Declare ``first`` and ``second`` to be synonyms."""
        a, b = self._key(first), self._key(second)
        self._parent.setdefault(a, a)
        self._parent.setdefault(b, b)
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[rb] = ra

    def add_group(self, values: Iterable[str]) -> None:
        """Declare every value in ``values`` to be mutually synonymous."""
        values = list(values)
        if not values:
            return
        first = values[0]
        for other in values[1:]:
            self.add_pair(first, other)

    def are_synonyms(self, first: str, second: str) -> bool:
        """Return ``True`` if the two values belong to the same synonym group."""
        a, b = self._key(first), self._key(second)
        if a == b:
            return True
        if a not in self._parent or b not in self._parent:
            return False
        return self._find(a) == self._find(b)

    def canonical(self, value: str) -> str:
        """Return a canonical representative for ``value`` (its group root)."""
        key = self._key(value)
        if key not in self._parent:
            return key
        return self._find(key)

    def groups(self) -> list[list[str]]:
        """Return the synonym groups as canonically sorted lists of keys.

        Deterministic regardless of insertion order and union-find internals, so
        two dictionaries declaring the same synonymy produce the same groups —
        the artifact store fingerprints this view to detect synonym drift.
        """
        by_root: dict[str, list[str]] = {}
        for key in self._parent:
            by_root.setdefault(self._find(key), []).append(key)
        return sorted(sorted(members) for members in by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, value: str) -> bool:
        return self._key(value) in self._parent
