"""Cell-value normalization and approximate value matching (paper §4.1).

Real tables mention the same entity with minor syntactic variations — different
casing, punctuation, footnote markers such as ``[1]``, or parenthesised qualifiers.
The :class:`ValueMatcher` combines a light normalization pass with the fractional
banded edit distance from :mod:`repro.text.edit_distance` and an optional synonym
dictionary to decide whether two cell values refer to the same thing.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.text.edit_distance import (
    DEFAULT_CAP,
    DEFAULT_FRACTION,
    banded_edit_distance,
    fractional_threshold,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.text.synonyms import SynonymDictionary

__all__ = ["normalize_value", "ValueMatcher"]

_FOOTNOTE_RE = re.compile(r"\[\d+\]|\(\d+\)$|\*+$")
_WHITESPACE_RE = re.compile(r"\s+")
_PUNCTUATION_RE = re.compile(r"[^\w\s]")


def normalize_value(value: str, strip_punctuation: bool = True) -> str:
    """Normalize a raw cell value for comparison.

    The normalization lowercases, removes footnote markers (``[1]``, trailing ``*``),
    optionally strips punctuation (the paper ignores punctuation when matching, e.g.
    ``"American Samoa"`` vs ``"American Samoa (US)"``), and collapses whitespace.
    """
    text = value.strip()
    text = _FOOTNOTE_RE.sub(" ", text)
    text = text.casefold()
    if strip_punctuation:
        text = _PUNCTUATION_RE.sub(" ", text)
    text = _WHITESPACE_RE.sub(" ", text).strip()
    return text


class ValueMatcher:
    """Decides whether two cell values match.

    Parameters
    ----------
    fraction:
        Fractional edit-distance threshold ``f_ed`` (paper default 0.2).
    cap:
        Absolute cap ``k_ed`` on the threshold (paper default 10).
    synonyms:
        Optional :class:`~repro.text.synonyms.SynonymDictionary`; known synonyms
        match regardless of edit distance.
    approximate:
        When ``False`` only normalized-equal values match (used by the
        ``SynthesisPos``-style ablations of approximate matching).
    """

    def __init__(
        self,
        fraction: float = DEFAULT_FRACTION,
        cap: int = DEFAULT_CAP,
        synonyms: "SynonymDictionary | None" = None,
        approximate: bool = True,
    ) -> None:
        if fraction < 0:
            raise ValueError(f"fraction must be non-negative, got {fraction}")
        self.fraction = fraction
        self.cap = cap
        self.synonyms = synonyms
        self.approximate = approximate
        self._normalize_cache: dict[str, str] = {}

    def normalize(self, value: str) -> str:
        """Return the cached normalized form of ``value``."""
        cached = self._normalize_cache.get(value)
        if cached is None:
            cached = normalize_value(value)
            self._normalize_cache[value] = cached
        return cached

    def matches(self, first: str, second: str) -> bool:
        """Return ``True`` if the two values should be treated as the same value."""
        a, b = self.normalize(first), self.normalize(second)
        if a == b:
            return True
        if self.synonyms is not None and self.synonyms.are_synonyms(a, b):
            return True
        if not self.approximate:
            return False
        # Compare whitespace-free forms: the paper measures edit distance ignoring
        # punctuation, e.g. "American Samoa" vs "American Samoa (US)" is distance 2.
        compact_a, compact_b = a.replace(" ", ""), b.replace(" ", "")
        threshold = fractional_threshold(
            compact_a, compact_b, fraction=self.fraction, cap=self.cap
        )
        if threshold == 0:
            return False
        return banded_edit_distance(compact_a, compact_b, threshold) is not None

    def match_key(self, value: str) -> str:
        """Return a canonical grouping key for ``value``.

        Exact normalized equality (plus synonym canonicalization) is used for keys;
        approximate matches are resolved pairwise by :meth:`matches`, mirroring how
        the paper separates blocking (exact value overlap) from pairwise scoring.
        """
        normalized = self.normalize(value)
        if self.synonyms is not None and normalized in self.synonyms:
            return self.synonyms.canonical(normalized)
        return normalized
