"""Long-lived concurrent serving over synthesized mappings.

This package turns the synchronous batched :class:`~repro.applications.service.
MappingService` into a serving *process*:

* :mod:`repro.serving.daemon` — :class:`SynthesisDaemon`: a bounded request
  queue drained by a pluggable worker backend (threads, or a GIL-free
  :mod:`repro.exec` process pool per served generation via
  ``executor="process:N"``), with backpressure, per-batch deadlines,
  generation-tagged results, and atomic hot-swap of the served service;
* :mod:`repro.serving.watcher` — :class:`ArtifactWatcher`: picks up new
  artifact versions published by :func:`repro.store.save_artifact` (in-process
  notify hooks) or by other processes (polling) and drives the hot-swap;
* :mod:`repro.serving.aio` — :class:`AsyncDaemonClient`: an asyncio facade so
  event-loop code can await daemon batches directly.

The invariant the whole package is built around: **a batch is served entirely
by one generation** — answers are byte-identical to synchronous
:class:`MappingService` calls against that generation's artifact, before,
during, and after a hot reload.

The serving tier also **degrades gracefully** (see :mod:`repro.faults`): each
generation carries an optional circuit breaker (closed → open → half-open;
open fails fast with :class:`CircuitOpenError`), failed or corrupt hot-swaps
retry with backoff and then pin the last good generation rather than crash
the watcher, and :meth:`SynthesisDaemon.health` snapshots queue depth,
breaker state, shed-load counters, and watcher degradation in one JSON-able
dict for operators to poll.
"""

from repro.serving.aio import AsyncDaemonClient
from repro.serving.daemon import (
    CircuitOpenError,
    DaemonError,
    DaemonResult,
    DaemonStoppedError,
    DaemonTicket,
    DeadlineExpiredError,
    QueueFullError,
    ServiceGeneration,
    SynthesisDaemon,
)
from repro.serving.watcher import ArtifactWatcher

__all__ = [
    "SynthesisDaemon",
    "ServiceGeneration",
    "DaemonResult",
    "DaemonTicket",
    "DaemonError",
    "QueueFullError",
    "DeadlineExpiredError",
    "DaemonStoppedError",
    "CircuitOpenError",
    "ArtifactWatcher",
    "AsyncDaemonClient",
]
