"""A long-lived concurrent synthesis service daemon over :class:`MappingService`.

The paper's end-game (§5, Table 4) is interactive auto-fill / auto-join /
auto-correct serving many small requests.  :class:`MappingService` already
answers batches, but strictly synchronously: one client, one thread, no
admission control, and no way to pick up a new artifact version without
rebuilding the service by hand.  :class:`SynthesisDaemon` turns it into a
serving process:

* **Bounded request queue + worker pool.**  Batches are submitted as
  :class:`DaemonTicket` futures into a ``queue.Queue(maxsize=...)`` drained by a
  pool of worker threads.  The worker count mirrors
  :attr:`SynthesisConfig.num_workers` (``0``/``1`` → one worker, the sequential
  baseline); the handoff carries only immutable request envelopes
  (:class:`FillRequest` & co. are frozen, picklable dataclasses), so a
  process-pool backend could replace the threads without changing the protocol.
* **Backpressure.**  A full queue rejects non-blocking submissions with
  :class:`QueueFullError` instead of buffering without bound; blocking
  submission with a timeout is also supported.
* **Per-request deadlines.**  Every batch carries an optional deadline measured
  from enqueue time; a batch whose deadline has passed by the time a worker
  picks it up fails fast with :class:`DeadlineExpiredError` rather than being
  served late (the client has already given up on it).
* **Atomic artifact hot-reload.**  The served :class:`MappingService` lives in
  an immutable :class:`ServiceGeneration`; workers snapshot the current
  generation **once per batch**, so a reload (a single reference swap) can
  never expose a half-swapped view — in-flight batches finish on the
  generation they started on, and every result is tagged with the generation
  number and artifact fingerprint it was served from.  Reloads are driven by
  :class:`~repro.serving.watcher.ArtifactWatcher` whenever
  :func:`repro.store.incremental.refresh_artifact` (or any writer) publishes a
  new artifact version at the watched path.

This mirrors incremental view maintenance for query serving (Berkholz et al.,
"Answering FO+MOD queries under updates"): the daemon keeps answering at
constant latency while the artifact is maintained underneath it.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, wait as wait_futures
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.applications.service import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
    ServedResponse,
    ServiceStats,
)
from repro.core.config import SynthesisConfig

__all__ = [
    "DaemonError",
    "QueueFullError",
    "DeadlineExpiredError",
    "DaemonStoppedError",
    "ServiceGeneration",
    "DaemonResult",
    "DaemonTicket",
    "SynthesisDaemon",
]

#: The batch kinds the daemon can serve; each names the MappingService method.
REQUEST_KINDS = ("autofill", "autojoin", "autocorrect")

#: Sentinel instructing a worker thread to exit its loop.
_STOP = object()


class DaemonError(RuntimeError):
    """Base class for daemon failures."""


class QueueFullError(DaemonError):
    """The bounded request queue is full (backpressure: retry or shed load)."""


class DeadlineExpiredError(DaemonError):
    """The batch's deadline passed before a worker could serve it."""


class DaemonStoppedError(DaemonError):
    """The daemon is stopped (or stopping) and will not serve this batch."""


@dataclass(frozen=True)
class ServiceGeneration:
    """One immutable served generation: a service plus its provenance.

    Workers read the daemon's current generation with a single attribute load
    and serve the whole batch from that snapshot, which is what makes the
    hot-swap atomic from a request's point of view.
    """

    service: MappingService
    number: int
    source: str = "memory"
    fingerprint: str = ""
    activated_at: float = 0.0

    @property
    def stats(self) -> ServiceStats:
        """The generation's (generation-tagged) service stats."""
        return self.service.stats


@dataclass
class DaemonResult:
    """The outcome of one served batch, tagged with its serving generation."""

    kind: str
    responses: list[ServedResponse]
    generation: int
    fingerprint: str
    enqueued_at: float
    started_at: float
    finished_at: float

    @property
    def waited_seconds(self) -> float:
        """Time the batch spent queued before a worker picked it up."""
        return self.started_at - self.enqueued_at

    @property
    def served_seconds(self) -> float:
        """Time a worker spent serving the batch."""
        return self.finished_at - self.started_at

    @property
    def total_seconds(self) -> float:
        """Wall-clock latency from submission to completion."""
        return self.finished_at - self.enqueued_at

    @property
    def ok(self) -> bool:
        """True when every request in the batch served without error."""
        return all(response.ok for response in self.responses)


class DaemonTicket:
    """Handle for one submitted batch: a future resolving to :class:`DaemonResult`.

    ``ticket.result(timeout)`` blocks for the outcome;
    ``ticket.future`` is a plain :class:`concurrent.futures.Future`, so tickets
    compose with ``concurrent.futures.wait`` and ``asyncio.wrap_future``.
    """

    __slots__ = ("kind", "size", "enqueued_at", "deadline", "future")

    def __init__(
        self, kind: str, size: int, enqueued_at: float, deadline: float | None
    ) -> None:
        self.kind = kind
        self.size = size
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.future: Future = Future()

    def result(self, timeout: float | None = None) -> DaemonResult:
        """Block until the batch is served and return its :class:`DaemonResult`."""
        return self.future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done and return the batch's exception, if any."""
        return self.future.exception(timeout)

    def done(self) -> bool:
        return self.future.done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.future.done() else "pending"
        return f"DaemonTicket(kind={self.kind!r}, size={self.size}, {state})"


class SynthesisDaemon:
    """Concurrent request daemon over hot-swappable :class:`MappingService`s.

    Parameters
    ----------
    service:
        The initial service to serve (generation 1).
    workers:
        Worker-thread count; clamped to at least 1.
    queue_size:
        Bound on the request queue, in batches.
    default_deadline:
        Default per-batch deadline in seconds (``0``/``None`` disables it);
        per-submit deadlines override it.
    source / fingerprint:
        Provenance recorded on generation 1 (the artifact path and corpus
        fingerprint when constructed via :meth:`from_artifact`).
    """

    def __init__(
        self,
        service: MappingService,
        *,
        workers: int = 2,
        queue_size: int = 64,
        default_deadline: float | None = None,
        source: str = "memory",
        fingerprint: str = "",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if default_deadline is not None and default_deadline < 0:
            raise ValueError(
                f"default_deadline must be >= 0 or None, got {default_deadline}"
            )
        self.workers = workers
        self.queue_size = queue_size
        self.default_deadline = default_deadline or 0.0
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._swap_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: set[DaemonTicket] = set()
        self._closed = threading.Event()
        self._cancel_queued = threading.Event()
        self._watcher = None  # attached by from_artifact(watch=True)
        # Only the retired generations' stats are retained: keeping the full
        # ServiceGeneration would pin every superseded index in memory for the
        # daemon's whole lifetime, one per hot reload.
        self._retired_stats: list[ServiceStats] = []
        service.stats.generation = 1
        self._generation = ServiceGeneration(
            service=service,
            number=1,
            source=source,
            fingerprint=fingerprint,
            activated_at=time.monotonic(),
        )
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"synthesis-daemon-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- Construction -------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        *,
        config: SynthesisConfig | None = None,
        watch: bool = True,
        workers: int | None = None,
        queue_size: int | None = None,
        default_deadline: float | None = None,
        poll_seconds: float | None = None,
        prefer_curated: bool = True,
        **service_kwargs,
    ) -> "SynthesisDaemon":
        """Start a daemon serving a persisted artifact, optionally hot-reloading.

        ``config`` supplies defaults for every unset knob: the worker count
        mirrors :attr:`SynthesisConfig.num_workers` (``0``/``1`` → one worker),
        and queue bound / default deadline / watcher poll interval come from the
        ``daemon_*`` fields.  With ``watch=True`` an
        :class:`~repro.serving.watcher.ArtifactWatcher` is attached that
        atomically swaps in every new artifact version published at ``path``.
        """
        from repro.serving.watcher import ArtifactWatcher
        from repro.store.artifact import load_artifact

        config = config or SynthesisConfig()
        workers = max(1, config.num_workers) if workers is None else workers
        queue_size = config.daemon_queue_size if queue_size is None else queue_size
        if default_deadline is None:
            default_deadline = config.daemon_deadline_seconds
        poll = config.daemon_poll_seconds if poll_seconds is None else poll_seconds

        path = Path(path)
        # Snapshot the change signature *before* loading: a version published
        # while we load/build must look new to the watcher, not become its
        # baseline (it would otherwise be served only after the next publish).
        baseline = ArtifactWatcher.signature_of(path)
        load_started = time.monotonic()
        artifact = load_artifact(path)
        load_seconds = time.monotonic() - load_started
        service = MappingService.from_artifact_object(
            artifact,
            prefer_curated=prefer_curated,
            source=f"artifact:{path}",
            **service_kwargs,
        )
        service.stats.load_seconds = load_seconds
        daemon = cls(
            service,
            workers=workers,
            queue_size=queue_size,
            default_deadline=default_deadline,
            source=f"artifact:{path}",
            fingerprint=artifact.corpus_fingerprint,
        )
        if watch:

            def swap(new_artifact, artifact_path: Path) -> None:
                service = MappingService.from_artifact_object(
                    new_artifact,
                    prefer_curated=prefer_curated,
                    source=f"artifact:{artifact_path}",
                    **service_kwargs,
                )
                if daemon._watcher is not None:
                    service.stats.load_seconds = daemon._watcher.last_load_seconds
                daemon.reload(
                    service,
                    source=f"artifact:{artifact_path}",
                    fingerprint=new_artifact.corpus_fingerprint,
                )

            daemon._watcher = ArtifactWatcher(
                path, swap, poll_seconds=poll, baseline=baseline
            )
            daemon._watcher.start()
        return daemon

    # -- Introspection ------------------------------------------------------------------
    @property
    def generation(self) -> ServiceGeneration:
        """The currently served generation (an immutable snapshot)."""
        return self._generation

    @property
    def watcher(self):
        """The attached :class:`ArtifactWatcher`, when started with ``watch=True``."""
        return self._watcher

    @property
    def stats(self) -> ServiceStats:
        """Stats of the current generation's service."""
        return self._generation.service.stats

    def stats_by_generation(self) -> list[ServiceStats]:
        """Stats for every generation ever served, oldest first."""
        with self._swap_lock:
            return [*self._retired_stats, self._generation.stats]

    def queue_depth(self) -> int:
        """Number of batches currently queued (approximate, by nature)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    # -- Hot reload ---------------------------------------------------------------------
    def reload(
        self,
        service: MappingService,
        *,
        source: str = "reload",
        fingerprint: str = "",
    ) -> ServiceGeneration:
        """Atomically swap ``service`` in as the next generation.

        The swap is a single reference assignment: batches picked up after it
        see the new generation in full; batches already being served finish on
        the generation they snapshotted.  The retired generation (and its
        stats) remains available via :meth:`stats_by_generation`.
        """
        with self._swap_lock:
            number = self._generation.number + 1
            service.stats.generation = number
            generation = ServiceGeneration(
                service=service,
                number=number,
                source=source,
                fingerprint=fingerprint,
                activated_at=time.monotonic(),
            )
            self._retired_stats.append(self._generation.stats)
            self._generation = generation
        return generation

    # -- Submission ---------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        requests: Sequence[FillRequest | JoinRequest | CorrectRequest],
        *,
        deadline: float | None = None,
        block: bool = False,
        timeout: float | None = None,
    ) -> DaemonTicket:
        """Enqueue one batch and return its :class:`DaemonTicket`.

        Raises :class:`QueueFullError` when the queue is full (immediately with
        ``block=False``, after ``timeout`` seconds otherwise) and
        :class:`DaemonStoppedError` once the daemon is closed.
        """
        if kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {kind!r}; expected {REQUEST_KINDS}")
        if self._closed.is_set():
            raise DaemonStoppedError("daemon is closed; no new batches accepted")
        now = time.monotonic()
        if deadline is None:
            # The *default* deadline uses 0-disables semantics (documented on
            # SynthesisConfig); an explicit per-submit 0.0 means "already out
            # of budget" and expires immediately rather than never.
            deadline = self.default_deadline or None
        elif deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        ticket = DaemonTicket(
            kind=kind,
            size=len(requests),
            enqueued_at=now,
            deadline=(now + deadline) if deadline is not None else None,
        )
        with self._pending_lock:
            self._pending.add(ticket)
        try:
            self._queue.put((ticket, tuple(requests)), block=block, timeout=timeout)
        except queue.Full:
            with self._pending_lock:
                self._pending.discard(ticket)
            raise QueueFullError(
                f"daemon queue is full ({self.queue_size} batches queued); "
                "retry, block, or shed load"
            ) from None
        if self._closed.is_set():
            # close() may have finished its leftover sweep between our closed
            # check and the put, in which case nothing would ever resolve this
            # ticket; fail it here (a no-op if a draining worker beat us to it).
            self._fail_ticket(
                ticket, DaemonStoppedError("daemon closed while submitting")
            )
            raise DaemonStoppedError("daemon is closed; no new batches accepted")
        return ticket

    def autofill(self, requests: Sequence[FillRequest], **kwargs) -> DaemonTicket:
        """Submit an auto-fill batch (see :meth:`submit` for keyword arguments)."""
        return self.submit("autofill", requests, **kwargs)

    def autojoin(self, requests: Sequence[JoinRequest], **kwargs) -> DaemonTicket:
        """Submit an auto-join batch (see :meth:`submit` for keyword arguments)."""
        return self.submit("autojoin", requests, **kwargs)

    def autocorrect(self, requests: Sequence[CorrectRequest], **kwargs) -> DaemonTicket:
        """Submit an auto-correct batch (see :meth:`submit` for keyword arguments)."""
        return self.submit("autocorrect", requests, **kwargs)

    def drain(self, timeout: float | None = None) -> list[DaemonTicket]:
        """Block until every outstanding batch completes; return those tickets.

        Raises :class:`TimeoutError` if outstanding work remains after
        ``timeout`` seconds.
        """
        with self._pending_lock:
            outstanding = list(self._pending)
        waited = wait_futures([ticket.future for ticket in outstanding], timeout=timeout)
        if waited.not_done:
            raise TimeoutError(
                f"{len(waited.not_done)} of {len(outstanding)} batches still "
                f"outstanding after {timeout}s"
            )
        return sorted(outstanding, key=lambda ticket: ticket.enqueued_at)

    # -- Shutdown -----------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the daemon: reject new work, then wind down the workers.

        With ``drain=True`` (the default) every batch already queued is served
        before the workers exit; with ``drain=False`` queued batches fail with
        :class:`DaemonStoppedError` (a batch a worker is *currently* serving
        always completes either way).  Idempotent.
        """
        first_close = not self._closed.is_set()
        self._closed.set()
        if not drain:
            self._cancel_queued.set()
        if first_close:
            # Sentinels queue behind any remaining batches (FIFO), so each
            # worker exits only after the backlog ahead of it is handled.
            for _ in self._threads:
                self._queue.put(_STOP)
        if self._watcher is not None:
            self._watcher.stop()
        for thread in self._threads:
            thread.join(timeout)
        if any(thread.is_alive() for thread in self._threads):
            # A join timeout expired with workers still busy.  Leave the queue
            # alone: the survivors keep draining (or cancelling) it and exit on
            # their sentinels; sweeping now would cancel batches close(drain=
            # True) promised to serve and strand workers without sentinels.
            return
        # All workers have exited.  A submit racing with close can still have
        # slipped a batch in behind the sentinels; fail anything left so no
        # ticket is abandoned unresolved (the racing submitter does the same
        # on its side — double resolution is a guarded no-op).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                self._fail_ticket(
                    item[0], DaemonStoppedError("daemon closed before serving")
                )
            self._queue.task_done()

    def __enter__(self) -> "SynthesisDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # -- Worker internals ---------------------------------------------------------------
    def _fail_ticket(self, ticket: DaemonTicket, error: DaemonError) -> None:
        if not ticket.future.done():
            ticket.future.set_exception(error)
        with self._pending_lock:
            self._pending.discard(ticket)

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._serve_item(*item)
            finally:
                self._queue.task_done()

    def _serve_item(
        self,
        ticket: DaemonTicket,
        requests: tuple[FillRequest | JoinRequest | CorrectRequest, ...],
    ) -> None:
        started = time.monotonic()
        if self._cancel_queued.is_set():
            self._fail_ticket(
                ticket, DaemonStoppedError("daemon stopped before serving this batch")
            )
            return
        if ticket.deadline is not None and started > ticket.deadline:
            self._fail_ticket(
                ticket,
                DeadlineExpiredError(
                    f"batch missed its deadline by {started - ticket.deadline:.3f}s "
                    f"after waiting {started - ticket.enqueued_at:.3f}s in queue"
                ),
            )
            return
        # One atomic snapshot of the served generation per batch: the whole
        # batch — and its generation/fingerprint tags — comes from exactly one
        # consistent service, no matter how many reloads happen meanwhile.
        generation = self._generation
        try:
            responses = getattr(generation.service, ticket.kind)(list(requests))
            result = DaemonResult(
                kind=ticket.kind,
                responses=responses,
                generation=generation.number,
                fingerprint=generation.fingerprint,
                enqueued_at=ticket.enqueued_at,
                started_at=started,
                finished_at=time.monotonic(),
            )
        except BaseException as exc:  # pragma: no cover - service-level failures
            # MappingService isolates per-request errors in their envelopes, so
            # this only fires on daemon-level bugs; surface them on the ticket.
            if not ticket.future.done():
                ticket.future.set_exception(exc)
            with self._pending_lock:
                self._pending.discard(ticket)
            return
        if not ticket.future.done():
            ticket.future.set_result(result)
        with self._pending_lock:
            self._pending.discard(ticket)
