"""A long-lived concurrent synthesis service daemon over :class:`MappingService`.

The paper's end-game (§5, Table 4) is interactive auto-fill / auto-join /
auto-correct serving many small requests.  :class:`MappingService` already
answers batches, but strictly synchronously: one client, one thread, no
admission control, and no way to pick up a new artifact version without
rebuilding the service by hand.  :class:`SynthesisDaemon` turns it into a
serving process:

* **Bounded request queue + pluggable worker backend.**  Batches are submitted
  as :class:`DaemonTicket` futures into a ``queue.Queue(maxsize=...)`` drained
  by a pool of dispatcher threads.  Sizing and backend kind come from
  :attr:`SynthesisConfig.executor` (e.g. ``"thread:4"``, ``"process:4"``; the
  deprecated ``num_workers`` maps onto threads).  In **thread** mode the
  dispatchers serve batches in-process — under CPython's GIL that scales only
  workloads that wait on something.  In **process** mode each served
  generation owns a :class:`repro.exec.ProcessBackend` whose workers rebuild
  an identical :class:`MappingService` via a spawn-safe initializer, and
  dispatchers hand them the frozen picklable request envelopes
  (:class:`FillRequest` & co.) — CPU-bound request throughput scales past the
  GIL, with answers byte-identical to in-process serving (a pool-level
  failure falls back to serving locally on the same generation).
* **Backpressure.**  A full queue rejects non-blocking submissions with
  :class:`QueueFullError` instead of buffering without bound; blocking
  submission with a timeout is also supported.
* **Per-request deadlines.**  Every batch carries an optional deadline measured
  from enqueue time; a batch whose deadline has passed by the time a worker
  picks it up fails fast with :class:`DeadlineExpiredError` rather than being
  served late (the client has already given up on it).
* **Atomic artifact hot-reload.**  The served :class:`MappingService` lives in
  an immutable :class:`ServiceGeneration`; workers snapshot the current
  generation **once per batch**, so a reload (a single reference swap) can
  never expose a half-swapped view — in-flight batches finish on the
  generation they started on, and every result is tagged with the generation
  number and artifact fingerprint it was served from.  Reloads are driven by
  :class:`~repro.serving.watcher.ArtifactWatcher` whenever
  :func:`repro.store.incremental.refresh_artifact` (or any writer) publishes a
  new artifact version at the watched path.

This mirrors incremental view maintenance for query serving (Berkholz et al.,
"Answering FO+MOD queries under updates"): the daemon keeps answering at
constant latency while the artifact is maintained underneath it.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, wait as wait_futures
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.applications.service import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
    ServedResponse,
    ServiceStats,
)
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.exec.backend import (
    ExecutionBackend,
    ProcessBackend,
    create_backend,
    parse_executor_spec,
)
from repro.faults.breaker import CircuitBreaker
from repro.faults.retry import RetryPolicy

__all__ = [
    "DaemonError",
    "QueueFullError",
    "DeadlineExpiredError",
    "DaemonStoppedError",
    "CircuitOpenError",
    "ServiceGeneration",
    "DaemonResult",
    "DaemonTicket",
    "SynthesisDaemon",
]

#: The batch kinds the daemon can serve; each names the MappingService method.
#: ``cluster_lookup`` is the raw index-lookup kind used by the scatter-gather
#: router in :mod:`repro.cluster` to query shard replicas.
REQUEST_KINDS = ("autofill", "autojoin", "autocorrect", "cluster_lookup")

#: Sentinel instructing a worker thread to exit its loop.
_STOP = object()


# -- Process-pool serving workers ---------------------------------------------------------
# Each process worker rebuilds the generation's MappingService once (via the
# backend's spawn-safe initializer, from the picklable mapping pool + threshold
# kwargs) and then serves frozen request envelopes.  Serving is deterministic,
# so worker-built services answer byte-identically to the daemon's own.
_WORKER_SERVICE: MappingService | None = None


def _init_serving_worker(
    service_cls: type,
    mappings: list,
    serving_kwargs: dict,
    source: str,
) -> None:
    global _WORKER_SERVICE
    _WORKER_SERVICE = service_cls(mappings, source=source, **serving_kwargs)


def _serve_batch_in_worker(
    kind: str,
    requests: tuple[FillRequest | JoinRequest | CorrectRequest, ...],
) -> list[ServedResponse]:
    assert _WORKER_SERVICE is not None
    return getattr(_WORKER_SERVICE, kind)(list(requests))


class DaemonError(RuntimeError):
    """Base class for daemon failures."""


class QueueFullError(DaemonError):
    """The bounded request queue is full (backpressure: retry or shed load)."""


class DeadlineExpiredError(DaemonError):
    """The batch's deadline passed before a worker could serve it."""


class DaemonStoppedError(DaemonError):
    """The daemon is stopped (or stopping) and will not serve this batch."""


class CircuitOpenError(DaemonError):
    """The generation's circuit breaker is open: failing fast, not serving."""


@dataclass(frozen=True)
class ServiceGeneration:
    """One immutable served generation: a service plus its provenance.

    Workers read the daemon's current generation with a single attribute load
    and serve the whole batch from that snapshot, which is what makes the
    hot-swap atomic from a request's point of view.
    """

    service: MappingService
    number: int
    source: str = "memory"
    fingerprint: str = ""
    activated_at: float = 0.0
    #: The generation's process-serving backend (``None`` in thread mode).
    #: Tying the pool to the generation is what keeps hot reloads atomic in
    #: process mode too: a batch that snapshotted this generation serves on
    #: this pool's workers, whose services were built from exactly this
    #: generation's mappings.
    backend: ExecutionBackend | None = None
    #: The generation's circuit breaker (``None`` when breaking is disabled).
    #: Per-generation on purpose: a hot swap replaces the thing that was
    #: erroring, so the replacement starts with a clean (closed) breaker.
    breaker: CircuitBreaker | None = None

    @property
    def stats(self) -> ServiceStats:
        """The generation's (generation-tagged) service stats."""
        return self.service.stats


@dataclass
class DaemonResult:
    """The outcome of one served batch, tagged with its serving generation."""

    kind: str
    responses: list[ServedResponse]
    generation: int
    fingerprint: str
    enqueued_at: float
    started_at: float
    finished_at: float

    @property
    def waited_seconds(self) -> float:
        """Time the batch spent queued before a worker picked it up."""
        return self.started_at - self.enqueued_at

    @property
    def served_seconds(self) -> float:
        """Time a worker spent serving the batch."""
        return self.finished_at - self.started_at

    @property
    def total_seconds(self) -> float:
        """Wall-clock latency from submission to completion."""
        return self.finished_at - self.enqueued_at

    @property
    def ok(self) -> bool:
        """True when every request in the batch served without error."""
        return all(response.ok for response in self.responses)


class DaemonTicket:
    """Handle for one submitted batch: a future resolving to :class:`DaemonResult`.

    ``ticket.result(timeout)`` blocks for the outcome;
    ``ticket.future`` is a plain :class:`concurrent.futures.Future`, so tickets
    compose with ``concurrent.futures.wait`` and ``asyncio.wrap_future``.
    """

    __slots__ = ("kind", "size", "enqueued_at", "deadline", "future")

    def __init__(
        self, kind: str, size: int, enqueued_at: float, deadline: float | None
    ) -> None:
        self.kind = kind
        self.size = size
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.future: Future = Future()

    def result(self, timeout: float | None = None) -> DaemonResult:
        """Block until the batch is served and return its :class:`DaemonResult`."""
        return self.future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done and return the batch's exception, if any."""
        return self.future.exception(timeout)

    def done(self) -> bool:
        return self.future.done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.future.done() else "pending"
        return f"DaemonTicket(kind={self.kind!r}, size={self.size}, {state})"


class SynthesisDaemon:
    """Concurrent request daemon over hot-swappable :class:`MappingService`s.

    Parameters
    ----------
    service:
        The initial service to serve (generation 1).
    workers:
        Dispatcher-thread count (and, in process mode, the process-pool
        width).  When ``None``, the count comes from the ``executor`` spec
        (default 2).
    executor:
        Execution-backend spec (see :mod:`repro.exec`): ``"thread:4"`` serves
        on the dispatcher threads themselves (the historical behavior);
        ``"process:4"`` attaches a :class:`~repro.exec.ProcessBackend` per
        generation so CPU-bound serving scales past the GIL; ``"serial"`` is
        one dispatcher thread.  ``None`` means thread mode.
    queue_size:
        Bound on the request queue, in batches.
    default_deadline:
        Default per-batch deadline in seconds (``0``/``None`` disables it);
        per-submit deadlines override it.
    source / fingerprint:
        Provenance recorded on generation 1 (the artifact path and corpus
        fingerprint when constructed via :meth:`from_artifact`).
    breaker_threshold / breaker_min_requests / breaker_cooldown:
        Per-generation circuit breaker tuning (see
        :attr:`SynthesisConfig.daemon_breaker_threshold`): once at least
        ``breaker_min_requests`` recent requests show an error fraction of
        ``breaker_threshold``, batches fail fast with
        :class:`CircuitOpenError` until a half-open probe (admitted after
        ``breaker_cooldown`` seconds) serves cleanly.  ``breaker_threshold=0``
        (the default) disables breaking.
    retry_policy:
        The :class:`~repro.faults.RetryPolicy` handed to each generation's
        serving backend (pool rebuild budget and backoff); ``None`` keeps
        :data:`repro.exec.DEFAULT_RETRY_POLICY`.
    """

    def __init__(
        self,
        service: MappingService,
        *,
        workers: int | None = None,
        queue_size: int = 64,
        default_deadline: float | None = None,
        source: str = "memory",
        fingerprint: str = "",
        executor: str | None = None,
        breaker_threshold: float = 0.0,
        breaker_min_requests: int = 10,
        breaker_cooldown: float = 1.0,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if executor is not None:
            kind, spec_workers = parse_executor_spec(executor)
        else:
            kind, spec_workers = "thread", 0
        if workers is None:
            # Spec-derived sizing; "serial" means one dispatcher.  An
            # *explicitly* passed workers count always wins (a serial spec
            # with workers=4 serves in-process on 4 dispatcher threads).
            workers = 1 if kind == "serial" else (spec_workers or 2)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if default_deadline is not None and default_deadline < 0:
            raise ValueError(
                f"default_deadline must be >= 0 or None, got {default_deadline}"
            )
        self.workers = workers
        #: Backend kind batches are served on: "thread"/"serial" serve on the
        #: dispatcher threads; anything else gets a per-generation
        #: repro.exec backend built by :meth:`_make_serving_backend`.
        self.executor_kind = kind
        #: Times a backend-served batch fell back to in-process serving
        #: (pool shutdown race during reload, broken pool); answers are
        #: identical either way, the counter keeps the degradation observable.
        self.backend_fallbacks = 0
        if breaker_threshold > 1.0:
            raise ValueError(
                "breaker_threshold is an error rate and must be <= 1 "
                f"(<= 0 disables the breaker), got {breaker_threshold}"
            )
        self.queue_size = queue_size
        self.default_deadline = default_deadline or 0.0
        self.breaker_threshold = breaker_threshold
        self.breaker_min_requests = breaker_min_requests
        self.breaker_cooldown = breaker_cooldown
        self.retry_policy = retry_policy
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._swap_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        # Streaming-update accounting (repro.updates): guarded by its own lock
        # because the in-place patch path already holds _swap_lock.
        self._delta_lock = threading.Lock()
        self._deltas_applied = 0
        self._last_delta_seq: int | None = None
        self._last_delta_at = 0.0
        self._pending: set[DaemonTicket] = set()
        self._closed = threading.Event()
        self._cancel_queued = threading.Event()
        self._watcher = None  # attached by from_artifact(watch=True)
        #: Transport counter hook: ``repro.net.ReplicaServer`` points this at
        #: its :meth:`~repro.net.TransportStats.snapshot` so :meth:`health`
        #: reports real socket traffic.  ``None`` means in-process serving.
        self.transport_stats_provider = None
        # Only the retired generations' stats are retained: keeping the full
        # ServiceGeneration would pin every superseded index in memory for the
        # daemon's whole lifetime, one per hot reload.
        self._retired_stats: list[ServiceStats] = []
        service.stats.generation = 1
        self._generation = ServiceGeneration(
            service=service,
            number=1,
            source=source,
            fingerprint=fingerprint,
            activated_at=time.monotonic(),
            backend=self._make_serving_backend(service),
            breaker=self._make_breaker(),
        )
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"synthesis-daemon-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _make_serving_backend(self, service: MappingService) -> ExecutionBackend | None:
        """Build the per-generation serving backend (``None`` in thread mode).

        The backend's pool is created lazily on first use, so a reload storm
        that retires generations before they serve anything never spawns their
        worker processes.  Workers rebuild the service from its picklable
        ``(class, mapping pool, threshold kwargs)`` spec — spawn-safe: nothing
        is inherited ambiently from this process.
        """
        if self.executor_kind in ("thread", "serial"):
            return None
        initargs = (
            type(service),
            service.mapping_pool,
            service.serving_kwargs,
            f"{service.stats.source}#worker",
        )
        if self.executor_kind == "process":
            # The daemon is multi-threaded by construction (dispatchers,
            # watcher, client threads), so forking here could snapshot another
            # thread's held lock into the child; spawn starts workers from a
            # clean interpreter — the initializer/initargs contract above is
            # what makes that safe.
            return ProcessBackend(
                self.workers,
                initializer=_init_serving_worker,
                initargs=initargs,
                start_method="spawn",
                retry_policy=self.retry_policy,
            )
        return create_backend(
            f"{self.executor_kind}:{self.workers}",
            initializer=_init_serving_worker,
            initargs=initargs,
            retry_policy=self.retry_policy,
        )

    def _make_breaker(self) -> CircuitBreaker | None:
        """Build one generation's circuit breaker (``None`` when disabled)."""
        if self.breaker_threshold <= 0.0:
            return None
        return CircuitBreaker(
            error_threshold=self.breaker_threshold,
            min_requests=self.breaker_min_requests,
            cooldown_seconds=self.breaker_cooldown,
            window=max(128, self.breaker_min_requests),
        )

    # -- Construction -------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        *,
        config: SynthesisConfig | None = None,
        watch: bool = True,
        workers: int | None = None,
        executor: str | None = None,
        queue_size: int | None = None,
        default_deadline: float | None = None,
        poll_seconds: float | None = None,
        prefer_curated: bool = True,
        breaker_threshold: float | None = None,
        retry_policy: RetryPolicy | None = None,
        service_cls: type[MappingService] = MappingService,
        **service_kwargs,
    ) -> "SynthesisDaemon":
        """Start a daemon serving a persisted artifact, optionally hot-reloading.

        ``config`` supplies defaults for every unset knob: backend kind and
        worker count come from :attr:`SynthesisConfig.executor` (the deprecated
        ``num_workers`` maps onto worker threads; ``0``/``1`` → one worker),
        and queue bound / default deadline / watcher poll interval come from the
        ``daemon_*`` fields.  With ``watch=True`` an
        :class:`~repro.serving.watcher.ArtifactWatcher` is attached that
        atomically swaps in every new artifact version published at ``path``.
        ``service_cls`` substitutes a :class:`MappingService` subclass for both
        the initial load and every watcher hot-swap (benchmarks use it to serve
        an IO-weighted service; the cluster tier forwards it to replicas).
        """
        from repro.serving.watcher import ArtifactWatcher
        from repro.store.artifact import load_artifact

        config = config or SynthesisConfig()
        if executor is None:
            spec = config.effective_executor(default_kind="thread")
            if spec != "serial" or config.executor:
                # An explicit "serial" (field or REPRO_EXECUTOR) must produce
                # the single serial dispatcher — it outranks the legacy
                # num_workers sizing below, which only applies when the config
                # says nothing about executors at all.
                executor = spec
        if workers is None and executor is None:
            workers = max(1, config.num_workers)
        queue_size = config.daemon_queue_size if queue_size is None else queue_size
        if default_deadline is None:
            default_deadline = config.daemon_deadline_seconds
        poll = config.daemon_poll_seconds if poll_seconds is None else poll_seconds
        if breaker_threshold is None:
            breaker_threshold = config.daemon_breaker_threshold
        if retry_policy is None:
            retry_policy = config.retry_policy()

        path = Path(path)
        # Snapshot the change signature *before* loading: a version published
        # while we load/build must look new to the watcher, not become its
        # baseline (it would otherwise be served only after the next publish).
        baseline = ArtifactWatcher.signature_of(path)
        load_started = time.monotonic()
        artifact = load_artifact(path)
        service = service_cls.from_artifact_object(
            artifact,
            prefer_curated=prefer_curated,
            source=f"artifact:{path}",
            **service_kwargs,
        )
        # Sectioned artifacts decode their served sections lazily inside the
        # service build, so "load" is everything up to here minus the index
        # build itself (profiles/edges stay encoded — the daemon never pays
        # for them, at startup or on any hot reload).
        service.stats.load_seconds = (
            time.monotonic() - load_started - service.stats.build_seconds
        )
        daemon = cls(
            service,
            workers=workers,
            executor=executor,
            queue_size=queue_size,
            default_deadline=default_deadline,
            source=f"artifact:{path}",
            fingerprint=artifact.corpus_fingerprint,
            breaker_threshold=breaker_threshold,
            breaker_min_requests=config.daemon_breaker_min_requests,
            breaker_cooldown=config.daemon_breaker_cooldown_seconds,
            retry_policy=retry_policy,
        )
        if watch:

            def swap(new_artifact, artifact_path: Path) -> None:
                service = service_cls.from_artifact_object(
                    new_artifact,
                    prefer_curated=prefer_curated,
                    source=f"artifact:{artifact_path}",
                    **service_kwargs,
                )
                if daemon._watcher is not None:
                    service.stats.load_seconds = daemon._watcher.last_load_seconds
                daemon.reload(
                    service,
                    source=f"artifact:{artifact_path}",
                    fingerprint=new_artifact.corpus_fingerprint,
                )

            daemon._watcher = ArtifactWatcher(
                path,
                swap,
                poll_seconds=poll,
                baseline=baseline,
                retry_policy=retry_policy,
            )
            daemon._watcher.start()
        return daemon

    # -- Introspection ------------------------------------------------------------------
    @property
    def generation(self) -> ServiceGeneration:
        """The currently served generation (an immutable snapshot)."""
        return self._generation

    @property
    def watcher(self):
        """The attached :class:`ArtifactWatcher`, when started with ``watch=True``."""
        return self._watcher

    @property
    def stats(self) -> ServiceStats:
        """Stats of the current generation's service."""
        return self._generation.service.stats

    def stats_by_generation(self) -> list[ServiceStats]:
        """Stats for every generation ever served, oldest first."""
        with self._swap_lock:
            return [*self._retired_stats, self._generation.stats]

    def queue_depth(self) -> int:
        """Number of batches currently queued (approximate, by nature)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def health(self) -> dict[str, object]:
        """One JSON-able snapshot of everything an operator needs to page on.

        ``status`` is ``"ok"`` unless some degradation is live — breaker not
        closed, watcher pinned on a poisoned artifact or mid-retry, a serving
        backend that degraded inline, or the daemon closed — in which case it
        is ``"degraded"`` (``"closed"`` once the daemon stopped) and the
        contributing conditions are listed in ``degraded_reasons``.  Every
        field reflects *this instant*; poll it, don't cache it.
        """
        generation = self._generation
        stats = generation.stats
        backend = generation.backend
        breaker = generation.breaker
        reasons: list[str] = []
        breaker_state = breaker.state if breaker is not None else "disabled"
        if breaker_state not in ("closed", "disabled"):
            reasons.append(f"circuit breaker {breaker_state}")
        backend_info: dict[str, object] = {
            "kind": self.executor_kind,
            "fallbacks": self.backend_fallbacks,
            "crash_recoveries": getattr(backend, "crash_recoveries", 0),
            "tasks_retried": getattr(backend, "tasks_retried", 0),
            "fallback_reason": getattr(backend, "fallback_reason", None),
        }
        if backend_info["fallback_reason"]:
            reasons.append(str(backend_info["fallback_reason"]))
        watcher = self._watcher
        watcher_info: dict[str, object] | None = None
        if watcher is not None:
            watcher_info = watcher.health()
            if watcher_info.get("pinned"):
                reasons.append(
                    "watcher pinned the last good generation "
                    f"(artifact publish failing: {watcher_info.get('last_error')})"
                )
            elif not watcher_info.get("last_swap_ok", True):
                reasons.append(
                    f"last hot-swap failed: {watcher_info.get('last_error')}"
                )
        stats_view = stats.as_dict()
        if self.closed:
            status = "closed"
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "degraded_reasons": reasons,
            "generation": generation.number,
            "source": generation.source,
            "fingerprint": generation.fingerprint,
            "queue_depth": self.queue_depth(),
            "queue_size": self.queue_size,
            "workers": self.workers,
            "breaker": breaker.snapshot() if breaker is not None
            else {"state": "disabled"},
            "requests": stats_view["requests"],
            "errors": stats_view["errors"],
            "shed": stats_view["shed"],
            "backend": backend_info,
            "watcher": watcher_info,
            "transport": (
                self.transport_stats_provider()
                if self.transport_stats_provider is not None
                # Keys mirror repro.net.TRANSPORT_HEALTH_KEYS; duplicated as a
                # literal so the serving layer never imports the net layer.
                else {
                    "kind": "inproc",
                    "connections": 0,
                    "frames_sent": 0,
                    "frames_received": 0,
                    "bytes_sent": 0,
                    "bytes_received": 0,
                    "reconnects": 0,
                    "rtt_ms_p50": 0.0,
                    "rtt_ms_p90": 0.0,
                }
            ),
            "deltas_applied": self._deltas_applied,
            "last_delta_seq": self._last_delta_seq,
            "update_lag": (
                time.monotonic() - self._last_delta_at
                if self._last_delta_at
                else 0.0
            ),
        }

    # -- Hot reload ---------------------------------------------------------------------
    def reload(
        self,
        service: MappingService,
        *,
        source: str = "reload",
        fingerprint: str = "",
    ) -> ServiceGeneration:
        """Atomically swap ``service`` in as the next generation.

        The swap is a single reference assignment: batches picked up after it
        see the new generation in full; batches already being served finish on
        the generation they snapshotted.  The retired generation (and its
        stats) remains available via :meth:`stats_by_generation`.
        """
        with self._swap_lock:
            number = self._generation.number + 1
            service.stats.generation = number
            generation = ServiceGeneration(
                service=service,
                number=number,
                source=source,
                fingerprint=fingerprint,
                activated_at=time.monotonic(),
                backend=self._make_serving_backend(service),
                breaker=self._make_breaker(),
            )
            retired = self._generation
            self._retired_stats.append(retired.stats)
            self._generation = generation
        if retired.backend is not None:
            # Batches that already snapshotted the retired generation hold its
            # backend: shutting it down lets tasks they submitted run to
            # completion, and a submit losing the race to the shutdown falls
            # back to serving locally on the same (retired) generation — the
            # answers are identical either way.  The wait=True join happens on
            # a side thread so reload never blocks on in-flight batches, while
            # the pool's pipes still close only after its management thread
            # exits (a wait=False close can otherwise race interpreter
            # shutdown into "Exception ignored ... Bad file descriptor"
            # noise from concurrent.futures' atexit hook).
            threading.Thread(
                target=retired.backend.close,
                kwargs={"wait": True},
                name=f"retire-generation-{retired.number}",
                daemon=True,
            ).start()
        return generation

    # -- Live delta application (repro.updates) -----------------------------------------
    def apply_delta(
        self,
        upserts: Iterable[MappingRelationship],
        removed: Iterable[str],
        *,
        seq: int,
        escalation_ratio: float = 0.25,
        source: str | None = None,
    ) -> ServiceGeneration:
        """Patch the served mapping pool in place from one update-stream delta.

        ``upserts`` replace-or-add mappings by id; ``removed`` ids are dropped.
        A small patch (change ratio at most ``escalation_ratio`` of the served
        pool) on an in-process generation (thread/serial mode) is applied
        **without** a generation swap: the service's index is spliced from the
        patched pool under the swap lock (unchanged mappings keep their index
        entries — see :meth:`MappingService.with_pool`) and the generation is
        re-issued with its stats, breaker, and number intact — in-flight
        batches still snapshot one consistent service, and observability
        counters keep accumulating.  A large patch, or any patch in process
        mode (worker pools are built per generation and cannot be patched),
        escalates to a normal :meth:`reload` swap.

        Daemons driven through this method should be constructed with
        ``watch=False``: an artifact watcher swaps in the *base* artifact,
        which silently discards every delta applied since the last compaction.
        """
        if self._closed.is_set():
            raise DaemonStoppedError("daemon is closed; no deltas accepted")
        upserts = list(upserts)
        removed = list(removed)
        with self._swap_lock:
            current = self._generation
            if not upserts and not removed:
                self._note_delta(seq)
                return current
            base_pool = current.service.mapping_pool
            by_id = {mapping.mapping_id: mapping for mapping in base_pool}
            for mapping_id in removed:
                by_id.pop(mapping_id, None)
            for mapping in upserts:
                by_id[mapping.mapping_id] = mapping
            new_pool = list(by_id.values())
            ratio = (len(upserts) + len(removed)) / max(1, len(base_pool))
            if current.backend is None and ratio <= escalation_ratio:
                old_service = current.service
                # with_pool reuses per-mapping index entries for the unchanged
                # pool, so the splice costs O(changed mappings), not O(pool).
                service = old_service.with_pool(new_pool, source=current.source)
                # Transplant the old stats object so request/error counters
                # (and the breaker window keyed off them) survive the patch —
                # from an operator's view this is still the same generation.
                stats = old_service.stats
                stats.index_size = len(service.index)
                service.stats = stats
                self._generation = ServiceGeneration(
                    service=service,
                    number=current.number,
                    source=current.source,
                    fingerprint=current.fingerprint,
                    activated_at=current.activated_at,
                    backend=None,
                    breaker=current.breaker,
                )
                self._note_delta(seq)
                return self._generation
        # Escalation: too much churn for an in-place patch (or a per-generation
        # worker pool is serving) — build a fresh service and swap generations.
        service = type(current.service)(
            new_pool,
            source=source or f"delta:{seq}",
            **current.service.serving_kwargs,
        )
        generation = self.reload(
            service,
            source=source or f"delta:{seq}",
            fingerprint=current.fingerprint,
        )
        self._note_delta(seq)
        return generation

    def _note_delta(self, seq: int) -> None:
        with self._delta_lock:
            self._deltas_applied += 1
            self._last_delta_seq = seq
            self._last_delta_at = time.monotonic()

    # -- Submission ---------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        requests: Sequence[FillRequest | JoinRequest | CorrectRequest],
        *,
        deadline: float | None = None,
        block: bool = False,
        timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> DaemonTicket:
        """Enqueue one batch and return its :class:`DaemonTicket`.

        Raises :class:`QueueFullError` when the queue is full (immediately with
        ``block=False``, after ``timeout`` seconds otherwise),
        :class:`CircuitOpenError` while the generation's breaker is open, and
        :class:`DaemonStoppedError` once the daemon is closed.

        ``retry_policy`` turns shed load into backoff-and-retry: a rejected
        submission (full queue or open breaker) is re-attempted on the
        policy's schedule — each retry counted in ``ServiceStats.retried`` —
        before the rejection finally propagates.
        """
        if retry_policy is None:
            return self._submit_once(
                kind, requests, deadline=deadline, block=block, timeout=timeout
            )
        attempt = 0
        while True:
            try:
                return self._submit_once(
                    kind, requests, deadline=deadline, block=block, timeout=timeout
                )
            except (QueueFullError, CircuitOpenError):
                attempt += 1
                if attempt > retry_policy.attempts:
                    raise
                self._generation.stats.bump("retried")
                time.sleep(retry_policy.delay(attempt))

    def _submit_once(
        self,
        kind: str,
        requests: Sequence[FillRequest | JoinRequest | CorrectRequest],
        *,
        deadline: float | None = None,
        block: bool = False,
        timeout: float | None = None,
    ) -> DaemonTicket:
        if kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {kind!r}; expected {REQUEST_KINDS}")
        if self._closed.is_set():
            raise DaemonStoppedError("daemon is closed; no new batches accepted")
        generation = self._generation
        if generation.breaker is not None and generation.breaker.state == "open":
            # Read-only fast reject: don't even queue a batch the serve-time
            # gate would refuse.  Half-open probes are admitted here (state is
            # not "open") and consumed at serve time, where the probe's real
            # outcome is known.
            rejections = generation.stats.bump("breaker_rejections")
            raise CircuitOpenError(
                f"generation {generation.number}'s circuit breaker is open "
                f"(error rate {generation.breaker.snapshot()['error_rate']:.2f} "
                f">= {generation.breaker.error_threshold}); "
                f"{rejections} batch(es) rejected by the breaker so far"
            )
        now = time.monotonic()
        if deadline is None:
            # The *default* deadline uses 0-disables semantics (documented on
            # SynthesisConfig); an explicit per-submit 0.0 means "already out
            # of budget" and expires immediately rather than never.
            deadline = self.default_deadline or None
        elif deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        ticket = DaemonTicket(
            kind=kind,
            size=len(requests),
            enqueued_at=now,
            deadline=(now + deadline) if deadline is not None else None,
        )
        with self._pending_lock:
            self._pending.add(ticket)
        try:
            self._queue.put((ticket, tuple(requests)), block=block, timeout=timeout)
        except queue.Full:
            with self._pending_lock:
                self._pending.discard(ticket)
            rejected = self._generation.stats.bump("rejected")
            raise QueueFullError(
                f"daemon queue is full ({self.queue_size} batches queued); "
                f"retry, block, or shed load ({rejected} batch(es) rejected, "
                f"{self._generation.stats.expired} expired this generation)"
            ) from None
        if self._closed.is_set():
            # close() may have finished its leftover sweep between our closed
            # check and the put, in which case nothing would ever resolve this
            # ticket; fail it here (a no-op if a draining worker beat us to it).
            self._fail_ticket(
                ticket, DaemonStoppedError("daemon closed while submitting")
            )
            raise DaemonStoppedError("daemon is closed; no new batches accepted")
        return ticket

    def autofill(self, requests: Sequence[FillRequest], **kwargs) -> DaemonTicket:
        """Submit an auto-fill batch (see :meth:`submit` for keyword arguments)."""
        return self.submit("autofill", requests, **kwargs)

    def autojoin(self, requests: Sequence[JoinRequest], **kwargs) -> DaemonTicket:
        """Submit an auto-join batch (see :meth:`submit` for keyword arguments)."""
        return self.submit("autojoin", requests, **kwargs)

    def autocorrect(self, requests: Sequence[CorrectRequest], **kwargs) -> DaemonTicket:
        """Submit an auto-correct batch (see :meth:`submit` for keyword arguments)."""
        return self.submit("autocorrect", requests, **kwargs)

    def drain(self, timeout: float | None = None) -> list[DaemonTicket]:
        """Block until every outstanding batch completes; return those tickets.

        Raises :class:`TimeoutError` if outstanding work remains after
        ``timeout`` seconds.
        """
        with self._pending_lock:
            outstanding = list(self._pending)
        waited = wait_futures([ticket.future for ticket in outstanding], timeout=timeout)
        if waited.not_done:
            raise TimeoutError(
                f"{len(waited.not_done)} of {len(outstanding)} batches still "
                f"outstanding after {timeout}s"
            )
        return sorted(outstanding, key=lambda ticket: ticket.enqueued_at)

    # -- Shutdown -----------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the daemon: reject new work, then wind down the workers.

        With ``drain=True`` (the default) every batch already queued is served
        before the workers exit; with ``drain=False`` queued batches fail with
        :class:`DaemonStoppedError` (a batch a worker is *currently* serving
        always completes either way).  Idempotent.
        """
        first_close = not self._closed.is_set()
        self._closed.set()
        if not drain:
            self._cancel_queued.set()
        if first_close:
            # Sentinels queue behind any remaining batches (FIFO), so each
            # worker exits only after the backlog ahead of it is handled.
            for _ in self._threads:
                self._queue.put(_STOP)
        if self._watcher is not None:
            self._watcher.stop()
        for thread in self._threads:
            thread.join(timeout)
        if any(thread.is_alive() for thread in self._threads):
            # A join timeout expired with workers still busy.  Leave the queue
            # alone: the survivors keep draining (or cancelling) it and exit on
            # their sentinels; sweeping now would cancel batches close(drain=
            # True) promised to serve and strand workers without sentinels.
            # The serving backend stays open for them too (interpreter
            # shutdown reaps it).
            return
        generation_backend = self._generation.backend
        if generation_backend is not None:
            # Retired generations' backends were shut down at reload time; all
            # dispatchers have exited, so the current pool is idle and a
            # waiting close is cheap (and leaves nothing for interpreter
            # shutdown to race against).
            generation_backend.close(wait=True)
        # All workers have exited.  A submit racing with close can still have
        # slipped a batch in behind the sentinels; fail anything left so no
        # ticket is abandoned unresolved (the racing submitter does the same
        # on its side — double resolution is a guarded no-op).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                self._fail_ticket(
                    item[0], DaemonStoppedError("daemon closed before serving")
                )
            self._queue.task_done()

    def __enter__(self) -> "SynthesisDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # -- Worker internals ---------------------------------------------------------------
    def _serve_on_generation(
        self,
        generation: ServiceGeneration,
        kind: str,
        requests: tuple[FillRequest | JoinRequest | CorrectRequest, ...],
    ) -> list[ServedResponse]:
        """Serve one batch on its snapshotted generation.

        Process mode dispatches the frozen envelopes to the generation's
        worker pool through :meth:`~repro.exec.ExecutionBackend.call` — the
        resilient entry point, so a worker crash rebuilds the pool and re-runs
        the batch before this method ever sees a failure — and folds the
        returned per-request outcomes into the daemon-side generation stats,
        which the workers' separate processes cannot reach.  A failure that
        escapes even that ladder (shutdown race with a reload, unpicklable
        payload) serves in-process instead: byte-identical answers, just
        without the parallelism.
        """
        backend = generation.backend
        if backend is not None:
            try:
                responses = backend.call(_serve_batch_in_worker, kind, requests)
            except Exception:
                with self._pending_lock:
                    self.backend_fallbacks += 1
            else:
                stats = generation.service.stats
                stats.record_batch()
                for response in responses:
                    stats.record(
                        response.kind, response.elapsed_seconds, response.ok
                    )
                return responses
        return getattr(generation.service, kind)(list(requests))

    def _fail_ticket(self, ticket: DaemonTicket, error: DaemonError) -> None:
        if not ticket.future.done():
            ticket.future.set_exception(error)
        with self._pending_lock:
            self._pending.discard(ticket)

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._serve_item(*item)
            finally:
                self._queue.task_done()

    def _serve_item(
        self,
        ticket: DaemonTicket,
        requests: tuple[FillRequest | JoinRequest | CorrectRequest, ...],
    ) -> None:
        started = time.monotonic()
        if self._cancel_queued.is_set():
            self._fail_ticket(
                ticket, DaemonStoppedError("daemon stopped before serving this batch")
            )
            return
        if ticket.deadline is not None and started > ticket.deadline:
            expired = self._generation.stats.bump("expired")
            self._fail_ticket(
                ticket,
                DeadlineExpiredError(
                    f"batch missed its deadline by {started - ticket.deadline:.3f}s "
                    f"after waiting {started - ticket.enqueued_at:.3f}s in queue "
                    f"({expired} batch(es) expired this generation)"
                ),
            )
            return
        # One atomic snapshot of the served generation per batch: the whole
        # batch — and its generation/fingerprint tags — comes from exactly one
        # consistent service (and, in process mode, exactly one worker pool
        # built from it), no matter how many reloads happen meanwhile.
        generation = self._generation
        breaker = generation.breaker
        if breaker is not None and not breaker.allow():
            # The authoritative admission gate: it runs *after* the deadline
            # check, so an already-expired ticket can never consume the
            # half-open probe, and on the batch that will actually serve.
            rejections = generation.stats.bump("breaker_rejections")
            self._fail_ticket(
                ticket,
                CircuitOpenError(
                    f"generation {generation.number}'s circuit breaker is open; "
                    f"{rejections} batch(es) rejected by the breaker so far"
                ),
            )
            return
        try:
            responses = self._serve_on_generation(generation, ticket.kind, requests)
            result = DaemonResult(
                kind=ticket.kind,
                responses=responses,
                generation=generation.number,
                fingerprint=generation.fingerprint,
                enqueued_at=ticket.enqueued_at,
                started_at=started,
                finished_at=time.monotonic(),
            )
        except BaseException as exc:  # pragma: no cover - service-level failures
            # MappingService isolates per-request errors in their envelopes, so
            # this only fires on daemon-level bugs; surface them on the ticket.
            if breaker is not None:
                # Count the whole batch as errored so a half-open probe that
                # blew up re-opens the breaker instead of wedging it.
                if breaker.record(0, len(requests)):
                    generation.stats.bump("breaker_opened")
            if not ticket.future.done():
                ticket.future.set_exception(exc)
            with self._pending_lock:
                self._pending.discard(ticket)
            return
        if breaker is not None:
            ok_count = sum(1 for response in responses if response.ok)
            if breaker.record(ok_count, len(responses) - ok_count):
                generation.stats.bump("breaker_opened")
        if not ticket.future.done():
            ticket.future.set_result(result)
        with self._pending_lock:
            self._pending.discard(ticket)
