"""asyncio-friendly facade over :class:`~repro.serving.daemon.SynthesisDaemon`.

The daemon itself is thread-based (its tickets are
:class:`concurrent.futures.Future`s), which composes directly with asyncio via
``asyncio.wrap_future``.  :class:`AsyncDaemonClient` packages that up: each
coroutine submits a batch without blocking the event loop — even when the
bounded queue applies backpressure — and awaits the tagged
:class:`~repro.serving.daemon.DaemonResult`.

Example::

    async with AsyncDaemonClient(daemon) as client:
        fills, corrections = await asyncio.gather(
            client.autofill([FillRequest(keys=("California", "Texas"))]),
            client.autocorrect([CorrectRequest(values=("CA", "California"))]),
        )
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Sequence

from repro.applications.service import CorrectRequest, FillRequest, JoinRequest
from repro.faults.retry import RetryPolicy
from repro.serving.daemon import DaemonResult, SynthesisDaemon

__all__ = ["AsyncDaemonClient"]


class AsyncDaemonClient:
    """Submit batches to a :class:`SynthesisDaemon` from asyncio code.

    The client does not own the daemon unless it is used as an async context
    manager, in which case exiting the context closes the daemon (draining
    in-flight work).
    """

    def __init__(self, daemon: SynthesisDaemon) -> None:
        self.daemon = daemon

    async def submit(
        self,
        kind: str,
        requests: Sequence[FillRequest | JoinRequest | CorrectRequest],
        *,
        deadline: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> DaemonResult:
        """Submit one batch and await its result.

        Queue backpressure is absorbed off-loop: the (potentially blocking)
        enqueue runs in the default executor, so a full queue delays only this
        coroutine, never the event loop.  ``retry_policy`` re-attempts shed
        submissions (full queue, open breaker) on the policy's backoff
        schedule before the rejection propagates — the retries (and their
        sleeps) also run off-loop.
        """
        loop = asyncio.get_running_loop()
        ticket = await loop.run_in_executor(
            None,
            partial(
                self.daemon.submit,
                kind,
                requests,
                deadline=deadline,
                block=True,
                retry_policy=retry_policy,
            ),
        )
        return await asyncio.wrap_future(ticket.future)

    async def autofill(
        self, requests: Sequence[FillRequest], *, deadline: float | None = None
    ) -> DaemonResult:
        """Await one auto-fill batch."""
        return await self.submit("autofill", requests, deadline=deadline)

    async def autojoin(
        self, requests: Sequence[JoinRequest], *, deadline: float | None = None
    ) -> DaemonResult:
        """Await one auto-join batch."""
        return await self.submit("autojoin", requests, deadline=deadline)

    async def autocorrect(
        self, requests: Sequence[CorrectRequest], *, deadline: float | None = None
    ) -> DaemonResult:
        """Await one auto-correct batch."""
        return await self.submit("autocorrect", requests, deadline=deadline)

    async def drain(self, timeout: float | None = None) -> None:
        """Await completion of every outstanding batch."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, partial(self.daemon.drain, timeout=timeout))

    async def health(self) -> dict[str, object]:
        """Await one :meth:`SynthesisDaemon.health` snapshot (off-loop)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.daemon.health)

    async def aclose(self, *, drain: bool = True) -> None:
        """Close the underlying daemon without blocking the event loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, partial(self.daemon.close, drain=drain))

    async def __aenter__(self) -> "AsyncDaemonClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose(drain=True)
