"""Watch a persisted artifact path and hand new versions to a callback.

The serving daemon stays up while :func:`repro.store.incremental.refresh_artifact`
(in this process or another) publishes new artifact versions.  The watcher
combines two signals:

* **In-process publish hooks** — :func:`repro.store.artifact.save_artifact`
  notifies subscribers after its atomic rename, so same-process saves trigger a
  reload immediately (and unconditionally, which also covers writers fast
  enough to not advance the file's mtime).
* **Polling** — a background thread compares the file's ``(mtime_ns, size)``
  signature every ``poll_seconds``, which covers artifacts published by other
  processes.

Either way the artifact is re-read through :func:`load_artifact` and
checksum-validated **before** the callback sees it, so a damaged or
half-published file (impossible with ``save_artifact``'s atomic rename, but
possible with foreign writers) is skipped and retried on the next tick instead
of ever being swapped in.  For sectioned (v2) artifacts the validation walks
the table of contents and hashes each section's stored bytes — no section is
decoded — so a reload candidate is vetted at hashing speed and the swap
itself only ever decodes the mappings + curation sections it serves.

Failed swaps **degrade gracefully** instead of looping hot or wedging: each
failure (damaged bytes, load error, callback exception) schedules the next
unforced retry on the :class:`~repro.faults.RetryPolicy`'s backoff, and once
the budget is exhausted the watcher *pins* the current on-disk version as
poisoned — the daemon keeps serving the last good generation, the condition
is reported through :meth:`ArtifactWatcher.health` (and the daemon's
``health()``), and the next *new* publish is still tried, so recovery is
automatic the moment a good artifact lands.  Forced checks (the in-process
publish hook) bypass the backoff: a publisher we just heard from deserves an
immediate look.  When a :class:`~repro.faults.FaultInjector` is active, the
watcher is also a chaos hook point: reload candidates can be deterministically
treated as failed publishes or fed corrupted bytes.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable

from repro.faults.plan import active_injector
from repro.faults.retry import RetryPolicy
from repro.store.artifact import (
    ArtifactError,
    SynthesisArtifact,
    load_artifact,
    subscribe_artifact,
)
from repro.store.format import ArtifactReader

__all__ = ["ArtifactWatcher"]

#: Default hot-swap retry schedule: three backed-off retries, then pin.
_DEFAULT_WATCH_RETRY = RetryPolicy(attempts=3, base_seconds=0.05, max_seconds=2.0)


class ArtifactWatcher:
    """Invokes ``on_artifact(artifact, path)`` for each new version of ``path``.

    The callback runs on the watcher (or publisher) thread *after* the new
    version is fully on disk and has passed its checksum; with
    :class:`~repro.serving.daemon.SynthesisDaemon` it builds the next
    :class:`MappingService` and performs the atomic generation swap.
    """

    def __init__(
        self,
        path: str | Path,
        on_artifact: Callable[[SynthesisArtifact, Path], None],
        *,
        poll_seconds: float = 0.25,
        subscribe: bool = True,
        baseline: tuple[int, int] | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if poll_seconds <= 0:
            raise ValueError(f"poll_seconds must be > 0, got {poll_seconds}")
        self.path = Path(path)
        self.poll_seconds = poll_seconds
        self.retry_policy = (
            retry_policy if retry_policy is not None else _DEFAULT_WATCH_RETRY
        )
        self.reloads = 0
        self.skipped = 0
        self.callback_errors = 0
        #: Wall-clock cost of the most recent successful artifact load, for the
        #: consumer to fold into its serving stats (load_seconds).
        self.last_load_seconds = 0.0
        # -- Degradation state (all surfaced through health()) ------------------
        #: Swap failures since the last successful swap (any cause).
        self.consecutive_failures = 0
        #: Whether the most recent swap attempt succeeded (True before any).
        self.last_swap_ok = True
        #: Human-readable cause of the most recent swap failure, or ``None``.
        self.last_error: str | None = None
        #: The on-disk signature pinned as poisoned after the retry budget was
        #: exhausted — that exact file state is never retried, but any *new*
        #: publish (different signature) is, so recovery is automatic.
        self._pinned_signature: tuple[int, int] | None = None
        #: Monotonic instant before which unforced checks skip (backoff).
        self._retry_at = 0.0
        self._on_artifact = on_artifact
        # The baseline is the signature of the version the caller has already
        # loaded and is serving.  Callers that load before constructing the
        # watcher should capture it with signature_of() *before* their load —
        # a version published in between then differs from the baseline and is
        # picked up on the first poll instead of silently becoming the baseline.
        self._signature = (
            baseline if baseline is not None else self._current_signature()
        )
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._forced = False
        self._check_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._unsubscribe = (
            subscribe_artifact(self.path, self._on_published) if subscribe else None
        )

    # -- Lifecycle ----------------------------------------------------------------------
    def start(self) -> "ArtifactWatcher":
        """Start the polling thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"artifact-watcher:{self.path.name}", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop polling and unsubscribe from publish notifications (idempotent)."""
        self._stop.set()
        self._wake.set()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ArtifactWatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Change detection ---------------------------------------------------------------
    def check_now(self, *, force: bool = False) -> bool:
        """Check the path once; reload + callback on a new version.

        Returns True when a new version was handed to the callback.  ``force``
        reloads even if the file signature looks unchanged (used by the
        in-process publish hook, where we *know* a save just happened) and
        bypasses the failure backoff — a publisher we just heard from deserves
        an immediate look.  Failures never propagate: they are counted,
        backed off, eventually pinned, and reported via :meth:`health`.
        """
        with self._check_lock:
            signature = self._current_signature()
            if signature is None:
                return False
            if signature == self._signature and not force:
                return False
            if signature == self._pinned_signature:
                # This exact file state exhausted its retry budget; only a new
                # publish (which changes the signature) is worth another try.
                return False
            if not force and time.monotonic() < self._retry_at:
                return False
            injector = active_injector()
            load_started = time.perf_counter()
            try:
                if injector is not None and injector.publish_failure():
                    raise OSError("injected publish failure")
                if injector is not None and injector.corrupt_publish():
                    # Read the published bytes, flip one deterministic byte,
                    # and vet the damage exactly as a real torn file would be
                    # vetted — every byte region is checksummed, so this
                    # always raises and never reaches the callback.
                    ArtifactReader(
                        injector.corrupt(self.path.read_bytes()),
                        source=str(self.path),
                    ).verify()
                artifact = load_artifact(self.path)
                # v2 artifacts load lazily (TOC only); verify() checksums every
                # section without decoding any, so damaged bytes are rejected
                # here — not mid-swap when the consumer first touches them.
                artifact.verify()
            except (ArtifactError, OSError) as exc:
                # Damaged or foreign bytes at the path: never swap them in;
                # keep the old signature so a later check retries.
                self.skipped += 1
                self._record_failure(signature, f"{type(exc).__name__}: {exc}")
                return False
            load_seconds = time.perf_counter() - load_started
            try:
                self.last_load_seconds = load_seconds
                self._on_artifact(artifact, self.path)
            except Exception as exc:
                # A failing consumer (e.g. service build out of memory) must
                # not kill the watcher thread; keep the old signature so a
                # later check retries the swap.
                self.callback_errors += 1
                self._record_failure(signature, f"{type(exc).__name__}: {exc}")
                return False
            self._signature = signature
            self.reloads += 1
            self._record_success()
            return True

    def _record_failure(self, signature: tuple[int, int], message: str) -> None:
        # Check lock held.
        self.last_error = message
        self.last_swap_ok = False
        self.consecutive_failures += 1
        if self.consecutive_failures > self.retry_policy.attempts:
            # Budget exhausted: pin this exact file state as poisoned.  The
            # daemon keeps serving the last good generation; any new publish
            # has a different signature and is tried (once, while the storm
            # lasts) the moment it lands.
            self._pinned_signature = signature
        self._retry_at = time.monotonic() + self.retry_policy.delay(
            min(self.consecutive_failures, self.retry_policy.attempts + 1)
        )

    def _record_success(self) -> None:
        # Check lock held.
        self.consecutive_failures = 0
        self.last_swap_ok = True
        self.last_error = None
        self._pinned_signature = None
        self._retry_at = 0.0

    @property
    def pinned(self) -> bool:
        """True while a poisoned on-disk version is pinned out of service."""
        return self._pinned_signature is not None

    def health(self) -> dict[str, object]:
        """JSON-able degradation snapshot (folded into the daemon's health)."""
        return {
            "path": str(self.path),
            "reloads": self.reloads,
            "skipped": self.skipped,
            "callback_errors": self.callback_errors,
            "consecutive_failures": self.consecutive_failures,
            "last_swap_ok": self.last_swap_ok,
            "last_error": self.last_error,
            "pinned": self.pinned,
            "retry_in_seconds": max(0.0, self._retry_at - time.monotonic()),
        }

    @staticmethod
    def signature_of(path: str | Path) -> tuple[int, int] | None:
        """The ``(mtime_ns, size)`` change signature of ``path`` right now."""
        try:
            stat = Path(path).stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _current_signature(self) -> tuple[int, int] | None:
        return self.signature_of(self.path)

    def _on_published(self, _path: Path) -> None:
        # Runs on the publishing thread; defer the reload to the watcher thread
        # so a slow service build never blocks the writer.
        self._forced = True
        self._wake.set()

    def _run(self) -> None:
        while True:
            self._wake.wait(self.poll_seconds)
            self._wake.clear()
            if self._stop.is_set():
                return
            forced, self._forced = self._forced, False
            self.check_now(force=forced)
