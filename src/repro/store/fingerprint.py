"""Stable content fingerprints for tables and corpora.

An artifact must record exactly which input produced it, and the incremental
refresh path must decide which tables changed without diffing cell-by-cell.
Both use the same primitive: a SHA-256 hash over a canonical JSON encoding of a
table's identity and contents.  The encoding is explicit (no ``repr``, no hash
randomization) so fingerprints are stable across processes and Python versions.
"""

from __future__ import annotations

import hashlib
import json

from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table

__all__ = [
    "fingerprint_table",
    "fingerprint_corpus",
    "fingerprint_synonyms",
    "table_fingerprints",
    "corpus_digest",
]


def _digest(payload: object) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def fingerprint_table(table: Table) -> str:
    """Return a stable content hash of one relational table.

    Covers identity (id, domain, title), the header row, and every cell value in
    column order — anything candidate extraction can observe.
    """
    return _digest(
        [
            table.table_id,
            table.domain,
            table.title,
            [[column.name, column.values] for column in table.columns],
        ]
    )


def table_fingerprints(corpus: TableCorpus) -> dict[str, str]:
    """Return ``table_id -> fingerprint`` for every table in the corpus."""
    return {table.table_id: fingerprint_table(table) for table in corpus}


def corpus_digest(per_table: dict[str, str]) -> str:
    """Fold per-table fingerprints into one corpus fingerprint.

    Order-independent: the digest is taken over the sorted per-table
    fingerprints, so re-inserting the same tables in a different order yields
    the same corpus fingerprint.  Callers that already hold the per-table map
    use this directly instead of re-hashing every cell via
    :func:`fingerprint_corpus`.
    """
    return _digest(sorted(per_table.items()))


def fingerprint_corpus(corpus: TableCorpus) -> str:
    """Return a stable content hash of the whole corpus."""
    return corpus_digest(table_fingerprints(corpus))


def fingerprint_synonyms(synonyms) -> str:
    """Return a stable hash of a synonym dictionary (empty string for ``None``).

    Persisted profiles and pairwise scores embed synonym canonicalization, so
    artifacts record which synonymy they were computed under; incremental
    refresh compares this fingerprint and falls back to a full rebuild when the
    dictionaries differ.
    """
    if synonyms is None:
        return ""
    return _digest(synonyms.groups())
