"""Persisted synthesis artifacts (serving-side storage layer).

A full pipeline run is expensive: candidate extraction, pairwise compatibility
scoring, partitioning, and conflict resolution all scale with the corpus.  The
applications the paper motivates (auto-fill, auto-join, auto-correct — Table 4)
only need the *outputs* of that run, so this package persists them:

* :mod:`repro.store.fingerprint` — stable content hashes for tables and corpora,
  used both to stamp artifacts with their input and to detect which tables
  changed between runs;
* :mod:`repro.store.artifact` — :class:`SynthesisArtifact`, a versioned,
  checksummed, optionally gzip-compressed on-disk snapshot of one pipeline run
  (corpus fingerprint, candidate tables, table profiles, compatibility-graph
  edges, synthesized + curated mappings, stats and timings);
* :mod:`repro.store.incremental` — Δ-maintenance: refresh an artifact against an
  updated corpus, re-extracting and re-scoring only what changed.

Loading an artifact is orders of magnitude faster than re-running the pipeline,
which is what makes the batched :class:`~repro.applications.service.MappingService`
practical: one saved run amortized over many requests.
"""

from repro.store.artifact import (
    ARTIFACT_VERSION,
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
    SynthesisArtifact,
    load_artifact,
    save_artifact,
    subscribe_artifact,
)
from repro.store.fingerprint import fingerprint_corpus, fingerprint_table
from repro.store.incremental import RefreshStats, refresh_artifact

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactCorruptionError",
    "SynthesisArtifact",
    "save_artifact",
    "load_artifact",
    "subscribe_artifact",
    "fingerprint_table",
    "fingerprint_corpus",
    "RefreshStats",
    "refresh_artifact",
]
