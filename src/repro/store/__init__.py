"""Persisted synthesis artifacts (serving-side storage layer).

A full pipeline run is expensive: candidate extraction, pairwise compatibility
scoring, partitioning, and conflict resolution all scale with the corpus.  The
applications the paper motivates (auto-fill, auto-join, auto-correct — Table 4)
only need the *outputs* of that run, so this package persists them:

* :mod:`repro.store.fingerprint` — stable content hashes for tables and corpora,
  used both to stamp artifacts with their input and to detect which tables
  changed between runs;
* :mod:`repro.store.artifact` — :class:`SynthesisArtifact`, a versioned,
  checksummed on-disk snapshot of one pipeline run (corpus fingerprint,
  candidate tables, table profiles, compatibility-graph edges, synthesized +
  curated mappings, stats and timings), loaded as a **lazy facade** over the
  sectioned v2 container;
* :mod:`repro.store.format` / :mod:`repro.store.sections` /
  :mod:`repro.store.codec` — the v2 container: a table of contents over
  independently checksummed, individually gzip'd sections, with a compact
  interned-string binary encoding for the value-pair and edge sections
  (:class:`ArtifactReader` decodes sections on first access;
  :class:`ArtifactWriter` copies untouched sections verbatim);
* :mod:`repro.store.incremental` — Δ-maintenance: refresh an artifact against an
  updated corpus, re-extracting and re-scoring only what changed (and, for v2
  artifacts, decoding/rewriting only the sections the refresh touches).

Loading an artifact is orders of magnitude faster than re-running the pipeline,
which is what makes the batched :class:`~repro.applications.service.MappingService`
practical: one saved run amortized over many requests.
"""

from repro.store.artifact import (
    ARTIFACT_VERSION,
    SUPPORTED_VERSIONS,
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
    SynthesisArtifact,
    load_artifact,
    save_artifact,
    subscribe_artifact,
)
from repro.store.fingerprint import fingerprint_corpus, fingerprint_table
from repro.store.format import (
    ArtifactReader,
    ArtifactWriter,
    SectionInfo,
    atomic_write_bytes,
)
from repro.store.incremental import RefreshStats, refresh_artifact
from repro.store.sections import SECTION_ORDER

__all__ = [
    "ARTIFACT_VERSION",
    "SUPPORTED_VERSIONS",
    "SECTION_ORDER",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactCorruptionError",
    "ArtifactReader",
    "ArtifactWriter",
    "SectionInfo",
    "atomic_write_bytes",
    "SynthesisArtifact",
    "save_artifact",
    "load_artifact",
    "subscribe_artifact",
    "fingerprint_table",
    "fingerprint_corpus",
    "RefreshStats",
    "refresh_artifact",
]
