"""Incremental artifact refresh (Δ-maintenance of the synthesis pipeline).

When a corpus evolves — tables added, edited, or removed — re-running the whole
pipeline discards almost everything the previous run computed.  This module
refreshes a :class:`~repro.store.artifact.SynthesisArtifact` against the new
corpus while reusing, for every *unchanged* source table:

* its extracted candidate binary tables (no re-extraction);
* their persisted scoring profiles (no re-normalization — primed straight into
  the scorer via :meth:`CompatibilityScorer.prime_profile`);
* every pairwise score between two unchanged tables (no rescoring — blocking
  overlap between two tables depends only on those two tables, so an
  unchanged-unchanged pair blocks and scores exactly as it did before).

Only pairs touching a changed or added table are rescored; partitioning,
conflict resolution, and curation then re-run over the full candidate set
(they are cheap relative to scoring — see PERFORMANCE.md's hot-path map).

One approximation is inherent and documented rather than hidden: the PMI
coherence filter is corpus-global, so a changed corpus can shift the coherence
of columns in *unchanged* tables across the threshold.  Refresh keeps the
unchanged tables' original extraction (standard Δ-maintenance semantics); with
``use_pmi_filter=False`` the refreshed artifact is exactly identical to a cold
run on the new corpus.

Reuse is guarded, not assumed: a scoring-relevant config change or a different
synonym dictionary (persisted profiles embed synonym canonicalization — the
artifact records a fingerprint of the dictionary it was built under) falls back
to a full rebuild through this same code path, reusing nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields as dataclass_fields

from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.store.artifact import SynthesisArtifact, _encode_profile, edges_from_graph
from repro.store.fingerprint import (
    corpus_digest,
    fingerprint_synonyms,
    table_fingerprints,
)

__all__ = ["RefreshStats", "refresh_artifact"]

#: Config fields that cannot change any extraction/scoring/synthesis outcome and
#: therefore do not invalidate reuse of a previous run's scores.  The daemon_*
#: fields only shape how the serving daemon queues and reloads — never what a
#: pipeline run computes.
_RESULT_NEUTRAL_FIELDS = {
    "executor",
    "num_workers",
    "artifact_path",
    "artifact_compress",
    "daemon_queue_size",
    "daemon_poll_seconds",
    "daemon_deadline_seconds",
    "delta_escalation_ratio",
    "delta_compact_threshold",
    "extra",
}


def _scoring_config_matches(first: SynthesisConfig, second: SynthesisConfig) -> bool:
    return all(
        getattr(first, spec.name) == getattr(second, spec.name)
        for spec in dataclass_fields(SynthesisConfig)
        if spec.name not in _RESULT_NEUTRAL_FIELDS
    )


@dataclass
class RefreshStats:
    """Accounting of what one :func:`refresh_artifact` call reused vs redid."""

    tables_total: int = 0
    tables_unchanged: int = 0
    tables_changed: int = 0
    tables_added: int = 0
    tables_removed: int = 0
    candidates_total: int = 0
    candidates_reused: int = 0
    candidates_extracted: int = 0
    pairs_scored: int = 0
    pairs_reused: int = 0
    profiles_primed: int = 0
    full_rebuild: bool = False
    reason: str = ""
    elapsed_seconds: float = 0.0

    @property
    def noop(self) -> bool:
        """True when the corpus was untouched and the artifact was kept as-is."""
        return (
            not self.full_rebuild
            and self.tables_changed == 0
            and self.tables_added == 0
            and self.tables_removed == 0
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting artifacts."""
        return {
            "tables_total": self.tables_total,
            "tables_unchanged": self.tables_unchanged,
            "tables_changed": self.tables_changed,
            "tables_added": self.tables_added,
            "tables_removed": self.tables_removed,
            "candidates_total": self.candidates_total,
            "candidates_reused": self.candidates_reused,
            "candidates_extracted": self.candidates_extracted,
            "pairs_scored": self.pairs_scored,
            "pairs_reused": self.pairs_reused,
            "profiles_primed": self.profiles_primed,
            "full_rebuild": self.full_rebuild,
            "elapsed_seconds": self.elapsed_seconds,
        }


def refresh_artifact(
    artifact: SynthesisArtifact,
    corpus: TableCorpus,
    config: SynthesisConfig | None = None,
    synonyms=None,
) -> tuple[SynthesisArtifact, RefreshStats]:
    """Refresh ``artifact`` against ``corpus``, reusing unchanged work.

    Returns the refreshed artifact and a :class:`RefreshStats` describing how
    much was reused.  When nothing changed, the original artifact object is
    returned untouched.
    """
    # Imports are local for the same reason as in the pipeline: this module sits
    # below repro.core but orchestrates every other subpackage.
    from repro.extraction.candidates import CandidateExtractor
    from repro.extraction.cooccurrence import CooccurrenceIndex
    from repro.synthesis.curation import curate_mappings
    from repro.synthesis.synthesizer import TableSynthesizer

    started = time.perf_counter()
    config = config or artifact.config
    stats = RefreshStats()

    new_fingerprints = table_fingerprints(corpus)
    old_fingerprints = artifact.table_fingerprints
    unchanged_sources = {
        table_id
        for table_id, digest in new_fingerprints.items()
        if old_fingerprints.get(table_id) == digest
    }
    stats.tables_total = len(new_fingerprints)
    stats.tables_unchanged = len(unchanged_sources)
    stats.tables_added = sum(
        1 for table_id in new_fingerprints if table_id not in old_fingerprints
    )
    stats.tables_changed = (
        stats.tables_total - stats.tables_unchanged - stats.tables_added
    )
    stats.tables_removed = sum(
        1 for table_id in old_fingerprints if table_id not in new_fingerprints
    )

    synonyms_fingerprint = fingerprint_synonyms(synonyms)
    if not _scoring_config_matches(config, artifact.config):
        # A thresholds/filter change invalidates every cached score; fall back
        # to a clean rebuild (still through this one code path, reusing nothing).
        stats.full_rebuild = True
        stats.reason = "config changed; cached scores invalidated"
        unchanged_sources = set()
    elif synonyms_fingerprint != artifact.synonyms_fingerprint:
        # Persisted profiles and scores embed synonym canonicalization; mixing
        # them with a different dictionary would yield a graph matching neither
        # run, so reuse nothing.
        stats.full_rebuild = True
        stats.reason = "synonym dictionary changed; cached scores invalidated"
        unchanged_sources = set()
    elif stats.noop:
        # candidate_count() reads the TOC of a lazy (v2) artifact, so a no-op
        # refresh never decodes the candidates section at all.
        stats.candidates_total = artifact.candidate_count()
        stats.candidates_reused = stats.candidates_total
        stats.elapsed_seconds = time.perf_counter() - started
        return artifact, stats

    # -- Candidates: reuse unchanged tables' extraction, re-extract the rest --------
    extractor = CandidateExtractor(config)
    pmi_index = (
        CooccurrenceIndex.from_corpus(corpus) if config.use_pmi_filter else None
    )
    # On a full rebuild nothing is reused, so a lazy (v2) artifact's
    # candidates/profiles/edges sections are never even decoded; with reuse,
    # only the sections whose contents feed the refresh are touched — the
    # mappings/curation/stats sections stay encoded either way (refresh
    # re-synthesizes them from scratch).
    reused_by_source = artifact.candidates_by_source() if unchanged_sources else {}
    # Changed/added tables go through the same (possibly sharded) extraction
    # entry point as a cold run — the executor backend fans them out exactly
    # like blocked-pair scoring; extraction is per-table, so regrouping the
    # results by source table cannot change any candidate.
    changed_tables = [
        table for table in corpus if table.table_id not in unchanged_sources
    ]
    extracted, extraction_stats = extractor.extract_tables(
        changed_tables, index=pmi_index
    )
    extracted_by_source: dict[str, list] = {}
    for candidate in extracted:
        extracted_by_source.setdefault(candidate.source_table_id, []).append(candidate)
    candidates = []
    reused_candidate_ids: set[str] = set()
    # Iterate the corpus in its own order so the refreshed candidate list lines
    # up with what a cold run on this corpus would produce.
    for table in corpus:
        if table.table_id in unchanged_sources:
            kept = reused_by_source.get(table.table_id, [])
            candidates.extend(kept)
            reused_candidate_ids.update(candidate.table_id for candidate in kept)
        else:
            candidates.extend(extracted_by_source.get(table.table_id, []))
    stats.candidates_total = len(candidates)
    stats.candidates_reused = len(reused_candidate_ids)
    stats.candidates_extracted = stats.candidates_total - stats.candidates_reused

    # -- Synthesis: prime persisted profiles, reuse unchanged-pair scores ------------
    synthesizer = TableSynthesizer(config, synonyms)
    scorer = synthesizer.graph_builder.scorer
    for candidate in candidates:
        if candidate.table_id in reused_candidate_ids:
            profile = artifact.profile_for(candidate)
            if profile is not None and profile.edit_cap == config.edit_cap:
                scorer.prime_profile(candidate, profile)
                stats.profiles_primed += 1

    synthesis = synthesizer.synthesize(
        candidates,
        reusable_scores=artifact.edge_scores() if reused_candidate_ids else {},
        reusable_ids=reused_candidate_ids,
    )
    build_stats = synthesizer.graph_builder.last_build_stats
    stats.pairs_scored = build_stats.pairs_scored
    stats.pairs_reused = build_stats.pairs_reused

    mappings = synthesis.mappings
    curation = curate_mappings(
        mappings, min_domains=config.min_domains, min_size=config.min_mapping_size
    )

    positive_edges, negative_edges = edges_from_graph(synthesis.graph)
    changes = dict(
        corpus_name=corpus.name,
        corpus_fingerprint=corpus_digest(new_fingerprints),
        table_fingerprints=new_fingerprints,
        synonyms_fingerprint=synonyms_fingerprint,
        candidates=candidates,
        profiles={
            candidate.table_id: _encode_profile(scorer.profile(candidate))
            for candidate in candidates
        },
        positive_edges=positive_edges,
        negative_edges=negative_edges,
        mappings=mappings,
        curated_ids=[mapping.mapping_id for mapping in curation.kept],
        extraction_stats=extraction_stats.as_dict(),
        timings={"refresh": time.perf_counter() - started},
        metadata={
            "num_tables": float(len(corpus)),
            "num_candidates": float(len(candidates)),
            "num_mappings": float(len(mappings)),
            "num_curated": float(len(curation.kept)),
            "num_positive_edges": synthesis.metadata.get("num_positive_edges", 0.0),
            "num_negative_edges": synthesis.metadata.get("num_negative_edges", 0.0),
        },
    )
    if config != artifact.config:
        changes["config"] = config
    # evolve() marks only the sections above dirty: when the base artifact is a
    # lazy (v2) file and the config is unchanged, the next save_artifact copies
    # the config section's stored bytes verbatim instead of re-encoding it.
    refreshed = artifact.evolve(**changes)
    stats.elapsed_seconds = time.perf_counter() - started
    return refreshed, stats
