"""Per-section codecs for the sectioned (v2) artifact container.

An artifact's contents are split into independently encoded sections so
consumers decode only what they use (see :mod:`repro.store.format` for the
container layout).  Each section has a symbolic name, owns a fixed group of
:class:`~repro.store.artifact.SynthesisArtifact` fields, and encodes to bytes
via one of two codecs:

* **canonical JSON** for the small metadata sections (config, fingerprints,
  curation, stats) — human-debuggable, order-stable;
* the **compact binary pair encoding** (:mod:`repro.store.codec`) for the
  sections that dominate artifact size — candidates, profiles, mappings (all
  value-string heavy) and the edge lists (struct-packed ids + scores).

The model-object ↔ JSON converters that the v1 single-blob format uses live
here too, so both format versions share one definition of what a candidate,
profile, mapping, or config looks like on disk.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Mapping

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.store.codec import ByteReader, ByteWriter, CodecError, StringPool

__all__ = [
    "SECTION_ORDER",
    "SECTION_FIELDS",
    "FIELD_SECTION",
    "encode_section",
    "decode_section",
    "section_item_count",
]

#: Section names in their on-disk order.  The hot serving sections (mappings,
#: curation) sit next to each other; cold sections (profiles, edges) follow.
SECTION_ORDER = (
    "config",
    "fingerprints",
    "candidates",
    "profiles",
    "edges",
    "mappings",
    "curation",
    "stats",
)

#: Which artifact fields each section owns (decoding a section yields exactly
#: these fields; overriding any of them dirties the whole section).
SECTION_FIELDS: dict[str, tuple[str, ...]] = {
    "config": ("config",),
    "fingerprints": (
        "corpus_name",
        "corpus_fingerprint",
        "synonyms_fingerprint",
        "table_fingerprints",
    ),
    "candidates": ("candidates",),
    "profiles": ("profiles",),
    "edges": ("positive_edges", "negative_edges"),
    "mappings": ("mappings",),
    "curation": ("curated_ids",),
    "stats": ("extraction_stats", "timings", "metadata"),
}

FIELD_SECTION: dict[str, str] = {
    field: section for section, group in SECTION_FIELDS.items() for field in group
}


# ---------------------------------------------------------------------------------------
# Model object <-> JSON converters (shared by the v1 blob and the v2 JSON sections)
# ---------------------------------------------------------------------------------------
def jsonable(value: object) -> object:
    """Best-effort conversion of metadata values to JSON-encodable forms."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return str(value)


def encode_binary_table(table: BinaryTable) -> dict:
    return {
        "table_id": table.table_id,
        "pairs": [[pair.left, pair.right] for pair in table.pairs],
        "left_name": table.left_name,
        "right_name": table.right_name,
        "source_table_id": table.source_table_id,
        "domain": table.domain,
        "metadata": jsonable(table.metadata),
    }


def decode_binary_table(data: Mapping) -> BinaryTable:
    return BinaryTable(
        table_id=data["table_id"],
        pairs=[ValuePair(left, right) for left, right in data["pairs"]],
        left_name=data.get("left_name", ""),
        right_name=data.get("right_name", ""),
        source_table_id=data.get("source_table_id", ""),
        domain=data.get("domain", ""),
        metadata=dict(data.get("metadata", {})),
    )


def encode_mapping(mapping: MappingRelationship) -> dict:
    return {
        "mapping_id": mapping.mapping_id,
        "pairs": [[pair.left, pair.right] for pair in mapping.pairs],
        "source_tables": list(mapping.source_tables),
        "domains": sorted(mapping.domains),
        "column_names": list(mapping.column_names),
        "metadata": jsonable(mapping.metadata),
    }


def decode_mapping(data: Mapping) -> MappingRelationship:
    column_names = data.get("column_names", ["", ""])
    return MappingRelationship(
        mapping_id=data["mapping_id"],
        pairs=[ValuePair(left, right) for left, right in data["pairs"]],
        source_tables=list(data.get("source_tables", [])),
        domains=set(data.get("domains", [])),
        column_names=(column_names[0], column_names[1]),
        metadata=dict(data.get("metadata", {})),
    )


def encode_config(config: SynthesisConfig) -> dict:
    return {
        spec.name: jsonable(getattr(config, spec.name))
        for spec in dataclass_fields(config)
    }


def decode_config(data: Mapping) -> SynthesisConfig:
    known = {spec.name for spec in dataclass_fields(SynthesisConfig)}
    kwargs = {key: value for key, value in data.items() if key in known}
    return SynthesisConfig(**kwargs)


# ---------------------------------------------------------------------------------------
# JSON sections
# ---------------------------------------------------------------------------------------
def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _json_load(data: bytes) -> Any:
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"section is not valid JSON: {exc}") from exc


def _encode_config_section(fields: Mapping[str, Any]) -> bytes:
    return _json_bytes(encode_config(fields["config"]))


def _decode_config_section(data: bytes) -> dict[str, Any]:
    return {"config": decode_config(_json_load(data))}


def _encode_fingerprints(fields: Mapping[str, Any]) -> bytes:
    return _json_bytes(
        {
            "corpus_name": fields["corpus_name"],
            "corpus_fingerprint": fields["corpus_fingerprint"],
            "synonyms_fingerprint": fields["synonyms_fingerprint"],
            "table_fingerprints": dict(fields["table_fingerprints"]),
        }
    )


def _decode_fingerprints(data: bytes) -> dict[str, Any]:
    payload = _json_load(data)
    return {
        "corpus_name": payload["corpus_name"],
        "corpus_fingerprint": payload["corpus_fingerprint"],
        "synonyms_fingerprint": payload.get("synonyms_fingerprint", ""),
        "table_fingerprints": dict(payload["table_fingerprints"]),
    }


def _encode_curation(fields: Mapping[str, Any]) -> bytes:
    return _json_bytes({"curated_ids": list(fields["curated_ids"])})


def _decode_curation(data: bytes) -> dict[str, Any]:
    return {"curated_ids": list(_json_load(data)["curated_ids"])}


def _encode_stats(fields: Mapping[str, Any]) -> bytes:
    return _json_bytes(
        {
            "extraction_stats": jsonable(fields["extraction_stats"]),
            "timings": jsonable(fields["timings"]),
            "metadata": jsonable(fields["metadata"]),
        }
    )


def _decode_stats(data: bytes) -> dict[str, Any]:
    payload = _json_load(data)
    return {
        "extraction_stats": dict(payload.get("extraction_stats", {})),
        "timings": dict(payload.get("timings", {})),
        "metadata": dict(payload.get("metadata", {})),
    }


# ---------------------------------------------------------------------------------------
# Binary sections (compact pair encoding)
# ---------------------------------------------------------------------------------------
def _encode_candidates(fields: Mapping[str, Any]) -> bytes:
    candidates: list[BinaryTable] = fields["candidates"]
    pool = StringPool()
    records: list[tuple] = []
    for table in candidates:
        records.append(
            (
                pool.ref(table.table_id),
                pool.ref(table.left_name),
                pool.ref(table.right_name),
                pool.ref(table.source_table_id),
                pool.ref(table.domain),
                pool.ref(_json_bytes(jsonable(table.metadata)).decode("utf-8")),
                [(pool.ref(pair.left), pool.ref(pair.right)) for pair in table.pairs],
            )
        )
    writer = ByteWriter()
    pool.write_to(writer)
    writer.write_uvarint(len(records))
    for table_id, left_name, right_name, source, domain, metadata, pairs in records:
        for reference in (table_id, left_name, right_name, source, domain, metadata):
            writer.write_uvarint(reference)
        writer.write_uvarint(len(pairs))
        for left, right in pairs:
            writer.write_uvarint(left)
            writer.write_uvarint(right)
    return writer.getvalue()


def _decode_candidates(data: bytes) -> dict[str, Any]:
    reader = ByteReader(data)
    pool = StringPool.read(reader)
    lookup = StringPool.lookup
    candidates: list[BinaryTable] = []
    for _ in range(reader.read_uvarint()):
        table_id = lookup(pool, reader.read_uvarint())
        left_name = lookup(pool, reader.read_uvarint())
        right_name = lookup(pool, reader.read_uvarint())
        source = lookup(pool, reader.read_uvarint())
        domain = lookup(pool, reader.read_uvarint())
        metadata = _json_load(lookup(pool, reader.read_uvarint()).encode("utf-8"))
        pairs = [
            ValuePair(
                lookup(pool, reader.read_uvarint()), lookup(pool, reader.read_uvarint())
            )
            for _ in range(reader.read_uvarint())
        ]
        candidates.append(
            BinaryTable(
                table_id=table_id,
                pairs=pairs,
                left_name=left_name,
                right_name=right_name,
                source_table_id=source,
                domain=domain,
                metadata=dict(metadata),
            )
        )
    reader.expect_eof()
    return {"candidates": candidates}


def _encode_profiles(fields: Mapping[str, Any]) -> bytes:
    profiles: Mapping[str, Mapping] = fields["profiles"]
    pool = StringPool()
    records: list[tuple] = []
    for table_id, data in profiles.items():
        left_keys = list(data["left_keys"])
        right_keys = list(data["right_keys"])
        compact_lefts = list(data["compact_lefts"])
        records.append(
            (
                pool.ref(table_id),
                int(data["edit_cap"]),
                [pool.ref(key) for key in left_keys],
                [pool.ref(key) for key in right_keys],
                [pool.ref(key) for key in compact_lefts],
            )
        )
    writer = ByteWriter()
    pool.write_to(writer)
    writer.write_uvarint(len(records))
    for table_id, edit_cap, left_keys, right_keys, compact_lefts in records:
        writer.write_uvarint(table_id)
        writer.write_uvarint(edit_cap)
        writer.write_uvarint(len(left_keys))
        for row_lists in (left_keys, right_keys, compact_lefts):
            for reference in row_lists:
                writer.write_uvarint(reference)
    return writer.getvalue()


def _decode_profiles(data: bytes) -> dict[str, Any]:
    reader = ByteReader(data)
    pool = StringPool.read(reader)
    lookup = StringPool.lookup
    profiles: dict[str, dict] = {}
    for _ in range(reader.read_uvarint()):
        table_id = lookup(pool, reader.read_uvarint())
        edit_cap = reader.read_uvarint()
        rows = reader.read_uvarint()
        left_keys = [lookup(pool, reader.read_uvarint()) for _ in range(rows)]
        right_keys = [lookup(pool, reader.read_uvarint()) for _ in range(rows)]
        compact_lefts = [lookup(pool, reader.read_uvarint()) for _ in range(rows)]
        profiles[table_id] = {
            "left_keys": left_keys,
            "right_keys": right_keys,
            "compact_lefts": compact_lefts,
            "edit_cap": edit_cap,
        }
    reader.expect_eof()
    return {"profiles": profiles}


def _encode_edges(fields: Mapping[str, Any]) -> bytes:
    # One sorted pass per map: intern while buffering the records, then emit
    # pool + records (the pool must precede everything that references it).
    pool = StringPool()
    edge_maps: list[list[tuple[int, int, float]]] = []
    for key in ("positive_edges", "negative_edges"):
        edge_maps.append(
            [
                (pool.ref(first), pool.ref(second), weight)
                for (first, second), weight in sorted(fields[key].items())
            ]
        )
    writer = ByteWriter()
    pool.write_to(writer)
    for records in edge_maps:
        writer.write_uvarint(len(records))
        for first_ref, second_ref, weight in records:
            writer.write_uvarint(first_ref)
            writer.write_uvarint(second_ref)
            writer.write_float(weight)
    return writer.getvalue()


def _read_edge_map(reader: ByteReader, pool: list[str]) -> dict[tuple[str, str], float]:
    lookup = StringPool.lookup
    edges: dict[tuple[str, str], float] = {}
    for _ in range(reader.read_uvarint()):
        first = lookup(pool, reader.read_uvarint())
        second = lookup(pool, reader.read_uvarint())
        edges[(first, second)] = reader.read_float()
    return edges


def _decode_edges(data: bytes) -> dict[str, Any]:
    reader = ByteReader(data)
    pool = StringPool.read(reader)
    positive = _read_edge_map(reader, pool)
    negative = _read_edge_map(reader, pool)
    reader.expect_eof()
    return {"positive_edges": positive, "negative_edges": negative}


def _encode_mappings(fields: Mapping[str, Any]) -> bytes:
    mappings: list[MappingRelationship] = fields["mappings"]
    pool = StringPool()
    records: list[tuple] = []
    for mapping in mappings:
        records.append(
            (
                pool.ref(mapping.mapping_id),
                pool.ref(mapping.column_names[0]),
                pool.ref(mapping.column_names[1]),
                pool.ref(_json_bytes(jsonable(mapping.metadata)).decode("utf-8")),
                [(pool.ref(pair.left), pool.ref(pair.right)) for pair in mapping.pairs],
                [pool.ref(source) for source in mapping.source_tables],
                [pool.ref(domain) for domain in sorted(mapping.domains)],
            )
        )
    writer = ByteWriter()
    pool.write_to(writer)
    writer.write_uvarint(len(records))
    for mapping_id, left_col, right_col, metadata, pairs, sources, domains in records:
        for reference in (mapping_id, left_col, right_col, metadata):
            writer.write_uvarint(reference)
        writer.write_uvarint(len(pairs))
        for left, right in pairs:
            writer.write_uvarint(left)
            writer.write_uvarint(right)
        for reference_list in (sources, domains):
            writer.write_uvarint(len(reference_list))
            for reference in reference_list:
                writer.write_uvarint(reference)
    return writer.getvalue()


def _decode_mappings(data: bytes) -> dict[str, Any]:
    reader = ByteReader(data)
    pool = StringPool.read(reader)
    lookup = StringPool.lookup
    mappings: list[MappingRelationship] = []
    for _ in range(reader.read_uvarint()):
        mapping_id = lookup(pool, reader.read_uvarint())
        left_col = lookup(pool, reader.read_uvarint())
        right_col = lookup(pool, reader.read_uvarint())
        metadata = _json_load(lookup(pool, reader.read_uvarint()).encode("utf-8"))
        pairs = [
            ValuePair(
                lookup(pool, reader.read_uvarint()), lookup(pool, reader.read_uvarint())
            )
            for _ in range(reader.read_uvarint())
        ]
        sources = [lookup(pool, reader.read_uvarint()) for _ in range(reader.read_uvarint())]
        domains = [lookup(pool, reader.read_uvarint()) for _ in range(reader.read_uvarint())]
        mappings.append(
            MappingRelationship(
                mapping_id=mapping_id,
                pairs=pairs,
                source_tables=sources,
                domains=set(domains),
                column_names=(left_col, right_col),
                metadata=dict(metadata),
            )
        )
    reader.expect_eof()
    return {"mappings": mappings}


# ---------------------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------------------
_ENCODERS: dict[str, Callable[[Mapping[str, Any]], bytes]] = {
    "config": _encode_config_section,
    "fingerprints": _encode_fingerprints,
    "candidates": _encode_candidates,
    "profiles": _encode_profiles,
    "edges": _encode_edges,
    "mappings": _encode_mappings,
    "curation": _encode_curation,
    "stats": _encode_stats,
}

_DECODERS: dict[str, Callable[[bytes], dict[str, Any]]] = {
    "config": _decode_config_section,
    "fingerprints": _decode_fingerprints,
    "candidates": _decode_candidates,
    "profiles": _decode_profiles,
    "edges": _decode_edges,
    "mappings": _decode_mappings,
    "curation": _decode_curation,
    "stats": _decode_stats,
}


def encode_section(name: str, fields: Mapping[str, Any]) -> bytes:
    """Encode one section's field group to its (uncompressed) payload bytes."""
    return _ENCODERS[name](fields)


def decode_section(name: str, data: bytes) -> dict[str, Any]:
    """Decode one section's payload bytes back into its field group.

    Raises :class:`~repro.store.codec.CodecError` (or ``KeyError``/
    ``TypeError``/``ValueError`` from malformed JSON structures) on damaged
    input; the container layer converts those into
    :class:`~repro.store.errors.ArtifactCorruptionError` naming the section.
    """
    return _DECODERS[name](data)


def section_item_count(name: str, fields: Mapping[str, Any]) -> int | None:
    """Number of top-level items the section stores (``None`` when unsized).

    Recorded in the table of contents so consumers can answer "how many
    candidates/mappings does this artifact hold?" without decoding the section
    (the incremental-refresh no-op path relies on this).
    """
    sized = {
        "candidates": "candidates",
        "profiles": "profiles",
        "mappings": "mappings",
        "curation": "curated_ids",
        "fingerprints": "table_fingerprints",
    }
    field = sized.get(name)
    if field is None:
        return None
    return len(fields[field])
