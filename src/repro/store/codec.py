"""Low-level binary primitives for the v2 artifact's compact sections.

The value-pair sections of an artifact (candidates, profiles, mappings) and the
edge section are dominated by strings that repeat heavily — the same value
appears in several candidates, its normalized form appears again in the
profiles, table ids appear in every edge.  The v2 encoding therefore writes
each section as:

* an **interned string pool** — every distinct string stored once;
* **struct-packed records** — string *references* (LEB128 varints into the
  pool), varint counts, and raw little-endian float64 scores.

Varints keep references to the (overwhelmingly small) pool indices at 1–2
bytes, and float64 keeps scores bit-exact across a round trip.  Everything here
is deliberately order-preserving and deterministic: identical inputs encode to
identical bytes, which the artifact writer relies on for reproducible files.

All read-side failures raise :class:`CodecError` (a ``ValueError``); the
container layer wraps them into
:class:`~repro.store.errors.ArtifactCorruptionError` naming the section.
"""

from __future__ import annotations

import struct

__all__ = ["CodecError", "ByteWriter", "ByteReader", "StringPool"]

_FLOAT64 = struct.Struct("<d")

#: Sanity bound on decoded counts/lengths: no section legitimately contains a
#: single collection with more than a billion entries, so a larger decoded
#: varint is corruption — fail fast instead of attempting a huge allocation.
_MAX_COUNT = 1 << 30


class CodecError(ValueError):
    """The binary stream is truncated or structurally invalid."""


class ByteWriter:
    """Append-only little binary builder (varints, strings, float64)."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def write_uvarint(self, value: int) -> None:
        """LEB128-encode one unsigned integer."""
        if value < 0:
            raise ValueError(f"uvarint cannot encode negative value {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._buffer.append(byte | 0x80)
            else:
                self._buffer.append(byte)
                return

    def write_str(self, text: str) -> None:
        """Write one raw string: uvarint byte length + UTF-8 bytes."""
        data = text.encode("utf-8")
        self.write_uvarint(len(data))
        self._buffer += data

    def write_float(self, value: float) -> None:
        """Write one little-endian IEEE-754 float64 (bit-exact round trip)."""
        self._buffer += _FLOAT64.pack(value)

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes verbatim (caller owns any length prefix)."""
        self._buffer += data

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class ByteReader:
    """Bounds-checked reader over one section's decoded byte string."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_uvarint(self) -> int:
        value = 0
        shift = 0
        data, pos = self._data, self._pos
        while True:
            if pos >= len(data):
                raise CodecError("truncated varint")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise CodecError("varint too long")
        self._pos = pos
        if value > _MAX_COUNT and shift > 0:
            # Counts and pool references share this bound; a stray huge value
            # means the stream lost framing.
            raise CodecError(f"implausible varint value {value}")
        return value

    def read_str(self) -> str:
        length = self.read_uvarint()
        end = self._pos + length
        if end > len(self._data):
            raise CodecError("truncated string")
        try:
            text = self._data[self._pos : end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string: {exc}") from exc
        self._pos = end
        return text

    def read_float(self) -> float:
        end = self._pos + _FLOAT64.size
        if end > len(self._data):
            raise CodecError("truncated float64")
        value = _FLOAT64.unpack_from(self._data, self._pos)[0]
        self._pos = end
        return value

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` raw bytes (caller decoded the length)."""
        end = self._pos + count
        if end > len(self._data):
            raise CodecError(
                f"truncated bytes: {len(self._data) - self._pos} of {count}"
            )
        data = self._data[self._pos : end]
        self._pos = end
        return data

    def expect_eof(self) -> None:
        """Require the stream to be fully consumed (framing check)."""
        if self._pos != len(self._data):
            raise CodecError(
                f"{len(self._data) - self._pos} trailing bytes after section payload"
            )


class StringPool:
    """Write-side string interner: every distinct string is stored once.

    ``ref()`` returns the stable pool index for a string; ``write_to()`` emits
    the pool itself (count + raw strings, in first-interned order) — call it
    *after* interning everything, *before* the records that reference it.
    Read-side, :meth:`read` reconstructs the pool as a plain list and
    :meth:`lookup` resolves references with bounds checking.
    """

    __slots__ = ("_indexes", "_strings")

    def __init__(self) -> None:
        self._indexes: dict[str, int] = {}
        self._strings: list[str] = []

    def ref(self, text: str) -> int:
        index = self._indexes.get(text)
        if index is None:
            index = len(self._strings)
            self._indexes[text] = index
            self._strings.append(text)
        return index

    def __len__(self) -> int:
        return len(self._strings)

    def write_to(self, writer: ByteWriter) -> None:
        writer.write_uvarint(len(self._strings))
        for text in self._strings:
            writer.write_str(text)

    @staticmethod
    def read(reader: ByteReader) -> list[str]:
        count = reader.read_uvarint()
        return [reader.read_str() for _ in range(count)]

    @staticmethod
    def lookup(pool: list[str], reference: int) -> str:
        try:
            return pool[reference]
        except IndexError:
            raise CodecError(
                f"string reference {reference} outside pool of {len(pool)}"
            ) from None
