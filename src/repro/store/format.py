"""The sectioned (v2) artifact container: header + TOC + checksummed sections.

Layout::

    +---------------------------------------------------------------+
    | magic  b"reproartifact\\x00"                        (14 bytes) |
    | TOC length, big-endian uint32                       ( 4 bytes) |
    | SHA-256 of the TOC bytes                            (32 bytes) |
    | TOC: canonical JSON                                            |
    |   {"format", "format_version", "sections": [                   |
    |      {"name", "offset", "length", "checksum", "codec", "items"}|
    |   ]}                                                           |
    | section payloads, back to back (offsets relative to here)      |
    +---------------------------------------------------------------+

Every section is independently encoded (:mod:`repro.store.sections`),
optionally gzip-compressed, and checksummed (SHA-256 of the *stored* bytes) —
so a reader can:

* **validate without decoding** — :meth:`ArtifactReader.verify` hashes each
  section's stored bytes against the TOC, which is what the serving watcher
  uses to reject damaged files without paying for a full decode;
* **decode lazily** — :meth:`ArtifactReader.decode` decompresses and decodes a
  section on first access only, so a consumer that serves mappings never
  touches the (much larger) profile and edge sections;
* **copy sections wholesale** — :meth:`ArtifactWriter.add_stored` re-emits a
  section's stored bytes unchanged, so a writer refreshing an artifact
  re-encodes only the sections it actually touched.

Corruption anywhere surfaces as
:class:`~repro.store.errors.ArtifactCorruptionError` carrying the damaged
section's name; a future ``format_version`` surfaces as
:class:`~repro.store.errors.ArtifactVersionError` with the supported set.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.store.codec import CodecError
from repro.store.errors import (
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.store.sections import decode_section

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "SectionInfo",
    "ArtifactReader",
    "ArtifactWriter",
    "atomic_write_bytes",
]


def atomic_write_bytes(path: Path, data: bytes) -> Path:
    """Durably and atomically publish ``data`` at ``path``.

    Atomicity alone (temp sibling + rename) only protects against a crash
    mid-*write*; it does not protect against power loss after the rename, when
    the data blocks may still sit in the page cache while the rename was
    already journaled — a reboot can then expose a torn file at the final
    path.  So the full sequence is:

    1. write the temp sibling, ``flush`` + ``os.fsync`` it (data on disk),
    2. ``os.replace`` onto the target (atomic within a filesystem),
    3. ``os.fsync`` the parent directory where supported (the rename itself
       on disk).  Directory fds are a POSIX capability; platforms that refuse
       them (Windows) skip this step, keeping their native rename semantics.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    try:
        directory_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(directory_fd)
    except OSError:
        pass
    finally:
        os.close(directory_fd)
    return path

CONTAINER_MAGIC = b"reproartifact\x00"
CONTAINER_VERSION = 2

#: Format name recorded in the TOC (matches the v1 document magic).
_FORMAT_NAME = "repro-synthesis-artifact"

_TOC_LENGTH = struct.Struct(">I")
_HEADER_FIXED = len(CONTAINER_MAGIC) + _TOC_LENGTH.size + hashlib.sha256().digest_size


@dataclass(frozen=True)
class SectionInfo:
    """One TOC entry: where a section's stored bytes live and how to check them."""

    name: str
    #: Byte offset of the stored section, relative to the end of the TOC.
    offset: int
    #: Stored (possibly compressed) length in bytes.
    length: int
    #: SHA-256 hex digest of the stored bytes.
    checksum: str
    #: ``"json"`` / ``"bin"``, with ``"+gz"`` appended when gzip-compressed.
    codec: str
    #: Top-level item count (candidates, mappings, ...) or ``None`` if unsized.
    items: int | None = None


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ArtifactReader:
    """Random access to one v2 container's sections, decoded lazily.

    The whole file is held as one in-memory byte string (artifacts are small
    relative to the corpora that produce them, and the file on disk may be
    atomically replaced underneath us at any time), but *decoding* — gunzip +
    section codec + model-object construction, the expensive part — happens
    per section on first access and is cached.  :attr:`decode_counts` records
    how many times each section was actually decoded, which the tests use to
    assert that serving consumers never touch the cold sections.
    """

    def __init__(self, data: bytes, *, source: str = "artifact") -> None:
        self.source = source
        self._data = data
        self._decoded: dict[str, dict] = {}
        #: section name -> number of times its payload was decoded (0 = lazy
        #: section never touched; >1 impossible through this class's cache).
        self.decode_counts: dict[str, int] = {}
        self.sections: dict[str, SectionInfo] = {}
        if not data.startswith(CONTAINER_MAGIC):
            raise ArtifactError(f"{source} is not a sectioned synthesis artifact")
        if len(data) < _HEADER_FIXED:
            raise ArtifactCorruptionError(f"{source} is truncated before its TOC")
        toc_length = _TOC_LENGTH.unpack_from(data, len(CONTAINER_MAGIC))[0]
        digest_start = len(CONTAINER_MAGIC) + _TOC_LENGTH.size
        toc_start = _HEADER_FIXED
        toc_end = toc_start + toc_length
        if toc_end > len(data):
            raise ArtifactCorruptionError(f"{source} is truncated inside its TOC")
        toc_bytes = data[toc_start:toc_end]
        if hashlib.sha256(toc_bytes).digest() != data[digest_start:toc_start]:
            raise ArtifactCorruptionError(
                f"{source} failed its table-of-contents checksum"
            )
        try:
            toc = json.loads(toc_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactCorruptionError(
                f"{source} has an unreadable table of contents: {exc}"
            ) from exc
        if not isinstance(toc, dict) or toc.get("format") != _FORMAT_NAME:
            raise ArtifactError(f"{source} is not a synthesis artifact container")
        version = toc.get("format_version")
        if version != CONTAINER_VERSION:
            # Import here to avoid a cycle: artifact.py imports this module.
            from repro.store.artifact import SUPPORTED_VERSIONS

            raise ArtifactVersionError(
                f"artifact {source} has format version {version!r}; this build "
                f"reads versions {sorted(SUPPORTED_VERSIONS)}",
                found=version if isinstance(version, int) else None,
                supported=SUPPORTED_VERSIONS,
            )
        self._body_start = toc_end
        try:
            for entry in toc["sections"]:
                info = SectionInfo(
                    name=entry["name"],
                    offset=int(entry["offset"]),
                    length=int(entry["length"]),
                    checksum=entry["checksum"],
                    codec=entry["codec"],
                    items=entry.get("items"),
                )
                self.sections[info.name] = info
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptionError(
                f"{source} has a malformed table of contents: {exc}"
            ) from exc
        for info in self.sections.values():
            # Extent check at open time (no hashing): a truncated file fails
            # here instead of surfacing later on some unlucky first access.
            if info.offset < 0 or self._body_start + info.offset + info.length > len(
                data
            ):
                raise ArtifactCorruptionError(
                    f"section {info.name!r} extends past the end of {source}",
                    section=info.name,
                )

    @classmethod
    def from_path(cls, path: str | Path) -> "ArtifactReader":
        return cls(Path(path).read_bytes(), source=str(path))

    # -- Section access -----------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.sections

    def item_count(self, name: str) -> int | None:
        """The section's TOC item count, without decoding it (None if unsized)."""
        info = self.sections.get(name)
        return info.items if info is not None else None

    def section_span(self, name: str) -> tuple[int, int]:
        """The section's absolute ``(start, end)`` byte range in the container.

        Lets tooling (and the corruption tests) address a section's stored
        bytes in the file without re-deriving the header layout.
        """
        info = self._info(name)
        start = self._body_start + info.offset
        return start, start + info.length

    def _info(self, name: str) -> SectionInfo:
        info = self.sections.get(name)
        if info is None:
            raise ArtifactCorruptionError(
                f"{self.source} has no {name!r} section", section=name
            )
        return info

    def stored_bytes(self, name: str, *, verify: bool = True) -> bytes:
        """The section's stored (possibly compressed) bytes, checksum-verified."""
        info = self._info(name)
        start = self._body_start + info.offset
        end = start + info.length
        if info.offset < 0 or end > len(self._data):
            raise ArtifactCorruptionError(
                f"section {name!r} extends past the end of {self.source}",
                section=name,
            )
        stored = self._data[start:end]
        if verify and _checksum(stored) != info.checksum:
            raise ArtifactCorruptionError(
                f"section {name!r} of {self.source} failed its checksum",
                section=name,
            )
        return stored

    def payload_bytes(self, name: str) -> bytes:
        """The section's decompressed payload bytes (checksum-verified)."""
        stored = self.stored_bytes(name)
        if self._info(name).codec.endswith("+gz"):
            try:
                return gzip.decompress(stored)
            except (OSError, EOFError) as exc:
                raise ArtifactCorruptionError(
                    f"section {name!r} of {self.source} has a damaged gzip stream",
                    section=name,
                ) from exc
        return stored

    def decode(self, name: str) -> dict:
        """Decode the section into its field group (cached; counted once)."""
        cached = self._decoded.get(name)
        if cached is not None:
            return cached
        payload = self.payload_bytes(name)
        self.decode_counts[name] = self.decode_counts.get(name, 0) + 1
        try:
            fields = decode_section(name, payload)
        except ArtifactCorruptionError:
            raise
        except (CodecError, KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptionError(
                f"section {name!r} of {self.source} is malformed: {exc}",
                section=name,
            ) from exc
        self._decoded[name] = fields
        return fields

    def verify(self) -> None:
        """Checksum every section's stored bytes **without decoding any**.

        This is the cheap integrity gate the artifact watcher runs before
        handing a freshly published file to the serving swap: bit rot or
        truncation anywhere in the file raises
        :class:`ArtifactCorruptionError` naming the damaged section.
        """
        for name in self.sections:
            self.stored_bytes(name)


class ArtifactWriter:
    """Assembles and atomically publishes one v2 container.

    Sections are added in call order — freshly encoded via :meth:`add`, or
    copied verbatim from another container via :meth:`add_stored` (the
    incremental-refresh path uses this to avoid re-encoding sections it never
    touched; :attr:`sections_reused` counts them).  :meth:`commit` publishes
    through :func:`atomic_write_bytes` — fsynced temp sibling + atomic rename
    + directory fsync — so neither a crash mid-write nor power loss right
    after the rename can leave a torn artifact at the target path.
    """

    def __init__(self, path: str | Path, *, compress: bool = True) -> None:
        self.path = Path(path)
        self.compress = compress
        self.sections_reused = 0
        self._entries: list[tuple[SectionInfo, bytes]] = []
        self._names: set[str] = set()

    def _record(self, info: SectionInfo, stored: bytes) -> None:
        if info.name in self._names:
            raise ValueError(f"section {info.name!r} added twice")
        self._names.add(info.name)
        self._entries.append((info, stored))

    def add(
        self,
        name: str,
        payload: bytes,
        *,
        codec: str = "bin",
        items: int | None = None,
    ) -> None:
        """Add one freshly encoded section (compressed here if configured)."""
        stored = payload
        if self.compress:
            # mtime=0 keeps compressed bytes deterministic for identical payloads.
            stored = gzip.compress(payload, mtime=0)
            codec = f"{codec}+gz"
        offset = sum(len(data) for _, data in self._entries)
        self._record(
            SectionInfo(
                name=name,
                offset=offset,
                length=len(stored),
                checksum=_checksum(stored),
                codec=codec,
                items=items,
            ),
            stored,
        )

    def add_stored(
        self,
        name: str,
        stored: bytes,
        codec: str,
        *,
        items: int | None = None,
        checksum: str | None = None,
    ) -> None:
        """Copy an already-stored section verbatim (no re-encode, no re-gzip).

        ``checksum`` lets a caller that just verified the bytes against a
        source TOC pass the digest through instead of paying a second hash of
        the (deliberately large) section.
        """
        offset = sum(len(data) for _, data in self._entries)
        self._record(
            SectionInfo(
                name=name,
                offset=offset,
                length=len(stored),
                checksum=checksum if checksum is not None else _checksum(stored),
                codec=codec,
                items=items,
            ),
            stored,
        )
        self.sections_reused += 1

    def commit(self) -> Path:
        """Write the container to :attr:`path` atomically and return the path."""
        toc = {
            "format": _FORMAT_NAME,
            "format_version": CONTAINER_VERSION,
            "sections": [
                {
                    "name": info.name,
                    "offset": info.offset,
                    "length": info.length,
                    "checksum": info.checksum,
                    "codec": info.codec,
                    "items": info.items,
                }
                for info, _ in self._entries
            ],
        }
        toc_bytes = json.dumps(toc, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        parts = [
            CONTAINER_MAGIC,
            _TOC_LENGTH.pack(len(toc_bytes)),
            hashlib.sha256(toc_bytes).digest(),
            toc_bytes,
        ]
        parts.extend(data for _, data in self._entries)
        encoded = b"".join(parts)
        return atomic_write_bytes(self.path, encoded)
