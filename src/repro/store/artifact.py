"""Versioned on-disk snapshots of one synthesis pipeline run.

A :class:`SynthesisArtifact` captures everything downstream consumers need:

* the corpus fingerprint and per-table fingerprints (provenance + refresh diffing);
* the :class:`~repro.core.config.SynthesisConfig` the run used;
* the candidate binary tables and their precomputed scoring profiles
  (normalized keys and compact forms — the expensive part of
  :func:`repro.graph.profile.build_profile`);
* the compatibility graph's positive/negative edges, keyed by candidate table
  ids so they survive re-indexing;
* the synthesized and curated :class:`~repro.core.mapping.MappingRelationship`s
  plus the run's extraction stats, timings, and metadata.

The file format is a JSON document ``{"magic", "version", "checksum",
"payload"}``, optionally gzip-compressed.  ``checksum`` is the SHA-256 of the
canonical payload encoding, so bit rot and truncation surface as
:class:`ArtifactCorruptionError` instead of silently wrong mappings, and a
``version`` bump surfaces as :class:`ArtifactVersionError` instead of a
``KeyError`` deep in deserialization.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import threading
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.graph.build import CompatibilityGraph
from repro.graph.profile import TableProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.pipeline import PipelineResult

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactCorruptionError",
    "SynthesisArtifact",
    "save_artifact",
    "load_artifact",
    "subscribe_artifact",
]

ARTIFACT_MAGIC = "repro-synthesis-artifact"
ARTIFACT_VERSION = 1

#: gzip member header magic; used to sniff compressed artifacts on load.
_GZIP_MAGIC = b"\x1f\x8b"


class ArtifactError(Exception):
    """Base class for artifact store failures."""


class ArtifactVersionError(ArtifactError):
    """The artifact was written by an incompatible format version."""


class ArtifactCorruptionError(ArtifactError):
    """The artifact bytes are damaged, truncated, or fail the checksum."""


# ---------------------------------------------------------------------------------------
# JSON codecs for the model objects
# ---------------------------------------------------------------------------------------
def _jsonable(value: object) -> object:
    """Best-effort conversion of metadata values to JSON-encodable forms."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


def _encode_binary_table(table: BinaryTable) -> dict:
    return {
        "table_id": table.table_id,
        "pairs": [[pair.left, pair.right] for pair in table.pairs],
        "left_name": table.left_name,
        "right_name": table.right_name,
        "source_table_id": table.source_table_id,
        "domain": table.domain,
        "metadata": _jsonable(table.metadata),
    }


def _decode_binary_table(data: Mapping) -> BinaryTable:
    return BinaryTable(
        table_id=data["table_id"],
        pairs=[ValuePair(left, right) for left, right in data["pairs"]],
        left_name=data.get("left_name", ""),
        right_name=data.get("right_name", ""),
        source_table_id=data.get("source_table_id", ""),
        domain=data.get("domain", ""),
        metadata=dict(data.get("metadata", {})),
    )


def _encode_mapping(mapping: MappingRelationship) -> dict:
    return {
        "mapping_id": mapping.mapping_id,
        "pairs": [[pair.left, pair.right] for pair in mapping.pairs],
        "source_tables": list(mapping.source_tables),
        "domains": sorted(mapping.domains),
        "column_names": list(mapping.column_names),
        "metadata": _jsonable(mapping.metadata),
    }


def _decode_mapping(data: Mapping) -> MappingRelationship:
    column_names = data.get("column_names", ["", ""])
    return MappingRelationship(
        mapping_id=data["mapping_id"],
        pairs=[ValuePair(left, right) for left, right in data["pairs"]],
        source_tables=list(data.get("source_tables", [])),
        domains=set(data.get("domains", [])),
        column_names=(column_names[0], column_names[1]),
        metadata=dict(data.get("metadata", {})),
    )


def _encode_config(config: SynthesisConfig) -> dict:
    return {
        spec.name: _jsonable(getattr(config, spec.name))
        for spec in dataclass_fields(config)
    }


def _decode_config(data: Mapping) -> SynthesisConfig:
    known = {spec.name for spec in dataclass_fields(SynthesisConfig)}
    kwargs = {key: value for key, value in data.items() if key in known}
    return SynthesisConfig(**kwargs)


def _encode_profile(profile: TableProfile) -> dict:
    # lefts/rights are recoverable from the candidate's pairs; only the
    # matcher-derived strings (the expensive part) need to be stored.
    return {
        "left_keys": list(profile.left_keys),
        "right_keys": list(profile.right_keys),
        "compact_lefts": list(profile.compact_lefts),
        "edit_cap": profile.edit_cap,
    }


def _decode_profile(table: BinaryTable, data: Mapping) -> TableProfile:
    left_keys = list(data["left_keys"])
    right_keys = list(data["right_keys"])
    compact_lefts = list(data["compact_lefts"])
    if not len(table.pairs) == len(left_keys) == len(right_keys) == len(compact_lefts):
        raise ArtifactCorruptionError(
            f"profile for {table.table_id!r} does not align with its pairs"
        )
    by_left_key: dict[str, list[int]] = {}
    buckets: dict[int, list[int]] = {}
    for index, (left_key, compact) in enumerate(zip(left_keys, compact_lefts)):
        by_left_key.setdefault(left_key, []).append(index)
        buckets.setdefault(len(compact), []).append(index)
    return TableProfile(
        table=table,
        lefts=tuple(pair.left for pair in table.pairs),
        rights=tuple(pair.right for pair in table.pairs),
        left_keys=tuple(left_keys),
        right_keys=tuple(right_keys),
        compact_lefts=tuple(compact_lefts),
        pair_keys=frozenset(zip(left_keys, right_keys)),
        left_key_set=frozenset(left_keys),
        by_left_key={key: tuple(rows) for key, rows in by_left_key.items()},
        left_length_buckets={length: tuple(rows) for length, rows in buckets.items()},
        edit_cap=int(data["edit_cap"]),
    )


def _edge_key(first_id: str, second_id: str) -> tuple[str, str]:
    return (first_id, second_id) if first_id <= second_id else (second_id, first_id)


# ---------------------------------------------------------------------------------------
# The artifact model
# ---------------------------------------------------------------------------------------
@dataclass
class SynthesisArtifact:
    """Everything persisted from one pipeline run.

    Edges are keyed by **candidate table ids** (sorted pairs), not vertex
    indices, so they remain meaningful when the candidate list is reordered or
    partially reused by the incremental refresh path.
    """

    config: SynthesisConfig
    corpus_name: str
    corpus_fingerprint: str
    table_fingerprints: dict[str, str]
    candidates: list[BinaryTable]
    #: Hash of the synonym dictionary the run used ("" = none); profiles and
    #: scores embed synonym canonicalization, so refresh must compare it.
    synonyms_fingerprint: str = ""
    profiles: dict[str, dict] = field(default_factory=dict)
    positive_edges: dict[tuple[str, str], float] = field(default_factory=dict)
    negative_edges: dict[tuple[str, str], float] = field(default_factory=dict)
    mappings: list[MappingRelationship] = field(default_factory=list)
    curated_ids: list[str] = field(default_factory=list)
    extraction_stats: dict[str, float] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, float] = field(default_factory=dict)

    # -- Views ------------------------------------------------------------------------
    @property
    def curated(self) -> list[MappingRelationship]:
        """The curated subset of :attr:`mappings`, in curation (popularity) order."""
        by_id = {mapping.mapping_id: mapping for mapping in self.mappings}
        return [
            by_id[mapping_id] for mapping_id in self.curated_ids if mapping_id in by_id
        ]

    def candidates_by_source(self) -> dict[str, list[BinaryTable]]:
        """Group candidates by their source table id, preserving stored order."""
        grouped: dict[str, list[BinaryTable]] = {}
        for candidate in self.candidates:
            grouped.setdefault(candidate.source_table_id, []).append(candidate)
        return grouped

    def edge_scores(self) -> dict[tuple[str, str], tuple[float, float]]:
        """Merge the two edge maps into ``id pair -> (w+, w−)`` for reuse."""
        scores: dict[tuple[str, str], tuple[float, float]] = {}
        for key, weight in self.positive_edges.items():
            scores[key] = (weight, 0.0)
        for key, weight in self.negative_edges.items():
            positive = scores.get(key, (0.0, 0.0))[0]
            scores[key] = (positive, weight)
        return scores

    def profile_for(self, candidate: BinaryTable) -> TableProfile | None:
        """Reconstruct the stored scoring profile of one candidate, if present."""
        data = self.profiles.get(candidate.table_id)
        if data is None:
            return None
        return _decode_profile(candidate, data)

    def build_graph(self) -> CompatibilityGraph:
        """Materialize the stored edges as a :class:`CompatibilityGraph`."""
        graph = CompatibilityGraph(tables=list(self.candidates))
        index_of = {
            candidate.table_id: position
            for position, candidate in enumerate(self.candidates)
        }
        try:
            for (first_id, second_id), weight in self.positive_edges.items():
                graph.add_positive(index_of[first_id], index_of[second_id], weight)
            for (first_id, second_id), weight in self.negative_edges.items():
                graph.add_negative(index_of[first_id], index_of[second_id], weight)
        except KeyError as exc:
            raise ArtifactCorruptionError(
                f"edge references unknown candidate table {exc.args[0]!r}"
            ) from exc
        return graph

    def to_result(self) -> "PipelineResult":
        """Rebuild the :class:`~repro.core.pipeline.PipelineResult` view."""
        from repro.core.pipeline import PipelineResult

        return PipelineResult(
            mappings=list(self.mappings),
            curated=self.curated,
            candidates=list(self.candidates),
            extraction_stats=dict(self.extraction_stats),
            timings=dict(self.timings),
            metadata=dict(self.metadata),
        )

    # -- Construction -----------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        *,
        config: SynthesisConfig,
        corpus_name: str,
        corpus_fingerprint: str,
        table_fingerprints: Mapping[str, str],
        candidates: Iterable[BinaryTable],
        graph: CompatibilityGraph,
        synonyms_fingerprint: str = "",
        profiles: Mapping[str, TableProfile] | None = None,
        mappings: Iterable[MappingRelationship],
        curated: Iterable[MappingRelationship],
        extraction_stats: Mapping[str, float] | None = None,
        timings: Mapping[str, float] | None = None,
        metadata: Mapping[str, float] | None = None,
    ) -> "SynthesisArtifact":
        """Assemble an artifact from live pipeline objects (no serialization)."""
        candidates = list(candidates)
        positive: dict[tuple[str, str], float] = {}
        negative: dict[tuple[str, str], float] = {}
        for (first, second), weight in graph.positive_edges.items():
            positive[_edge_key(graph.tables[first].table_id, graph.tables[second].table_id)] = weight
        for (first, second), weight in graph.negative_edges.items():
            negative[_edge_key(graph.tables[first].table_id, graph.tables[second].table_id)] = weight
        return cls(
            config=config,
            corpus_name=corpus_name,
            corpus_fingerprint=corpus_fingerprint,
            table_fingerprints=dict(table_fingerprints),
            candidates=candidates,
            synonyms_fingerprint=synonyms_fingerprint,
            profiles={
                table_id: _encode_profile(profile)
                for table_id, profile in (profiles or {}).items()
            },
            positive_edges=positive,
            negative_edges=negative,
            mappings=list(mappings),
            curated_ids=[mapping.mapping_id for mapping in curated],
            extraction_stats=dict(extraction_stats or {}),
            timings=dict(timings or {}),
            metadata=dict(metadata or {}),
        )

    # -- Serialization ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Encode the artifact as a plain JSON-encodable payload dict."""
        return {
            "config": _encode_config(self.config),
            "corpus_name": self.corpus_name,
            "corpus_fingerprint": self.corpus_fingerprint,
            "table_fingerprints": dict(self.table_fingerprints),
            "synonyms_fingerprint": self.synonyms_fingerprint,
            "candidates": [_encode_binary_table(c) for c in self.candidates],
            "profiles": {table_id: dict(data) for table_id, data in self.profiles.items()},
            "positive_edges": [
                [first, second, weight]
                for (first, second), weight in sorted(self.positive_edges.items())
            ],
            "negative_edges": [
                [first, second, weight]
                for (first, second), weight in sorted(self.negative_edges.items())
            ],
            "mappings": [_encode_mapping(m) for m in self.mappings],
            "curated_ids": list(self.curated_ids),
            "extraction_stats": _jsonable(self.extraction_stats),
            "timings": _jsonable(self.timings),
            "metadata": _jsonable(self.metadata),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SynthesisArtifact":
        """Decode a payload dict produced by :meth:`to_payload`."""
        try:
            return cls(
                config=_decode_config(payload["config"]),
                corpus_name=payload["corpus_name"],
                corpus_fingerprint=payload["corpus_fingerprint"],
                table_fingerprints=dict(payload["table_fingerprints"]),
                candidates=[_decode_binary_table(c) for c in payload["candidates"]],
                synonyms_fingerprint=payload.get("synonyms_fingerprint", ""),
                profiles={
                    table_id: dict(data)
                    for table_id, data in payload.get("profiles", {}).items()
                },
                positive_edges={
                    (first, second): weight
                    for first, second, weight in payload["positive_edges"]
                },
                negative_edges={
                    (first, second): weight
                    for first, second, weight in payload["negative_edges"]
                },
                mappings=[_decode_mapping(m) for m in payload["mappings"]],
                curated_ids=list(payload["curated_ids"]),
                extraction_stats=dict(payload.get("extraction_stats", {})),
                timings=dict(payload.get("timings", {})),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptionError(f"malformed artifact payload: {exc}") from exc


# ---------------------------------------------------------------------------------------
# Publish / notify hooks
# ---------------------------------------------------------------------------------------
# Registry of in-process listeners per resolved artifact path.  save_artifact
# notifies them after its atomic rename, so a serving daemon watching the same
# path in the same process hot-swaps immediately instead of waiting for its
# next poll tick.  Cross-process consumers still rely on polling.
_publish_lock = threading.Lock()
_publish_subscribers: dict[Path, list[Callable[[Path], None]]] = {}


def subscribe_artifact(
    path: str | Path, callback: Callable[[Path], None]
) -> Callable[[], None]:
    """Call ``callback(path)`` after every :func:`save_artifact` to ``path``.

    The callback fires on the saving thread *after* the new version is fully
    (atomically) in place, so a reload triggered by it always reads a complete
    artifact.  Returns an idempotent unsubscribe callable.
    """
    key = Path(path).resolve()
    with _publish_lock:
        _publish_subscribers.setdefault(key, []).append(callback)

    def unsubscribe() -> None:
        with _publish_lock:
            listeners = _publish_subscribers.get(key)
            if listeners is None:
                return
            try:
                listeners.remove(callback)
            except ValueError:
                return
            if not listeners:
                del _publish_subscribers[key]

    return unsubscribe


def _notify_artifact_published(path: Path) -> None:
    with _publish_lock:
        listeners = list(_publish_subscribers.get(path.resolve(), ()))
    for callback in listeners:
        try:
            callback(path)
        except Exception:
            # A broken subscriber must not be able to fail the writer; the
            # polling fallback will still pick the new version up.
            pass


# ---------------------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------------------
def _canonical_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def save_artifact(
    artifact: SynthesisArtifact, path: str | Path, *, compress: bool = True
) -> Path:
    """Write ``artifact`` to ``path`` and return the path.

    The parent directory is created if needed.  The write goes through a
    temporary sibling file and an atomic rename, so a crash mid-write never
    leaves a half-written artifact at the target path.
    """
    path = Path(path)
    payload = artifact.to_payload()
    body = _canonical_bytes(payload)
    document = {
        "magic": ARTIFACT_MAGIC,
        "version": ARTIFACT_VERSION,
        "checksum": hashlib.sha256(body).hexdigest(),
        "payload": payload,
    }
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if compress:
        # mtime=0 keeps the compressed bytes deterministic for identical payloads.
        encoded = gzip.compress(encoded, mtime=0)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(encoded)
    temp.replace(path)
    _notify_artifact_published(path)
    return path


def load_artifact(path: str | Path) -> SynthesisArtifact:
    """Load an artifact written by :func:`save_artifact`.

    Raises
    ------
    ArtifactError
        If the file is not an artifact at all (wrong magic).
    ArtifactVersionError
        If the artifact was written by a different format version.
    ArtifactCorruptionError
        If the bytes are damaged or the checksum does not match.
    """
    raw = Path(path).read_bytes()
    if raw[:2] == _GZIP_MAGIC:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as exc:
            raise ArtifactCorruptionError(f"damaged gzip stream in {path}") from exc
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptionError(f"artifact {path} is not valid JSON") from exc
    if not isinstance(document, dict) or document.get("magic") != ARTIFACT_MAGIC:
        raise ArtifactError(f"{path} is not a synthesis artifact")
    version = document.get("version")
    if version != ARTIFACT_VERSION:
        raise ArtifactVersionError(
            f"artifact {path} has format version {version!r}; "
            f"this build reads version {ARTIFACT_VERSION}"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise ArtifactCorruptionError(f"artifact {path} has no payload")
    checksum = hashlib.sha256(_canonical_bytes(payload)).hexdigest()
    if checksum != document.get("checksum"):
        raise ArtifactCorruptionError(f"artifact {path} failed its checksum")
    return SynthesisArtifact.from_payload(payload)
