"""Versioned on-disk snapshots of one synthesis pipeline run.

A :class:`SynthesisArtifact` captures everything downstream consumers need:

* the corpus fingerprint and per-table fingerprints (provenance + refresh diffing);
* the :class:`~repro.core.config.SynthesisConfig` the run used;
* the candidate binary tables and their precomputed scoring profiles
  (normalized keys and compact forms — the expensive part of
  :func:`repro.graph.profile.build_profile`);
* the compatibility graph's positive/negative edges, keyed by candidate table
  ids so they survive re-indexing;
* the synthesized and curated :class:`~repro.core.mapping.MappingRelationship`s
  plus the run's extraction stats, timings, and metadata.

Two on-disk formats are supported:

* **v2 (default)** — a sectioned binary container
  (:mod:`repro.store.format`): header + table of contents + independently
  checksummed, individually gzip'd sections, with a compact interned-string
  binary encoding for the value-pair and edge sections that dominate artifact
  size.  :func:`load_artifact` returns a **lazy** artifact: each section is
  decoded on first attribute access, so a consumer that only serves mappings
  never pays for profiles or edges.
* **v1 (read + explicit write)** — the original single JSON document
  ``{"magic", "version", "checksum", "payload"}``, optionally
  gzip-compressed, decoded eagerly.  :func:`load_artifact` detects it
  transparently, and ``save_artifact(..., version=1)`` still writes it (the
  compat tests and fixtures rely on this).

Corruption surfaces as :class:`ArtifactCorruptionError` (naming the damaged
section for v2) instead of silently wrong mappings, and an unsupported format
version surfaces as :class:`ArtifactVersionError` carrying the supported set.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.graph.build import CompatibilityGraph
from repro.graph.profile import TableProfile
from repro.store.errors import (
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.store.format import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION,
    ArtifactReader,
    ArtifactWriter,
    atomic_write_bytes,
)
from repro.store.sections import (
    FIELD_SECTION,
    SECTION_FIELDS,
    SECTION_ORDER,
    decode_binary_table,
    decode_config,
    decode_mapping,
    encode_binary_table,
    encode_config,
    encode_mapping,
    encode_section,
    jsonable,
    section_item_count,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.pipeline import PipelineResult

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "SUPPORTED_VERSIONS",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactCorruptionError",
    "SynthesisArtifact",
    "save_artifact",
    "load_artifact",
    "subscribe_artifact",
]

ARTIFACT_MAGIC = "repro-synthesis-artifact"

#: The format version :func:`save_artifact` writes by default.
ARTIFACT_VERSION = CONTAINER_VERSION

#: Every format version :func:`load_artifact` can read.
SUPPORTED_VERSIONS = frozenset({1, CONTAINER_VERSION})

#: Sections stored with the compact binary pair encoding (the rest are JSON).
_BINARY_SECTIONS = frozenset({"candidates", "profiles", "edges", "mappings"})

#: gzip member header magic; used to sniff compressed v1 artifacts on load.
_GZIP_MAGIC = b"\x1f\x8b"


# ---------------------------------------------------------------------------------------
# Profile reconstruction (model-level; the stored form is a plain dict)
# ---------------------------------------------------------------------------------------
def _encode_profile(profile: TableProfile) -> dict:
    # lefts/rights are recoverable from the candidate's pairs; only the
    # matcher-derived strings (the expensive part) need to be stored.
    return {
        "left_keys": list(profile.left_keys),
        "right_keys": list(profile.right_keys),
        "compact_lefts": list(profile.compact_lefts),
        "edit_cap": profile.edit_cap,
    }


def _decode_profile(table: BinaryTable, data: Mapping) -> TableProfile:
    left_keys = list(data["left_keys"])
    right_keys = list(data["right_keys"])
    compact_lefts = list(data["compact_lefts"])
    if not len(table.pairs) == len(left_keys) == len(right_keys) == len(compact_lefts):
        raise ArtifactCorruptionError(
            f"profile for {table.table_id!r} does not align with its pairs"
        )
    by_left_key: dict[str, list[int]] = {}
    buckets: dict[int, list[int]] = {}
    for index, (left_key, compact) in enumerate(zip(left_keys, compact_lefts)):
        by_left_key.setdefault(left_key, []).append(index)
        buckets.setdefault(len(compact), []).append(index)
    return TableProfile(
        table=table,
        lefts=tuple(pair.left for pair in table.pairs),
        rights=tuple(pair.right for pair in table.pairs),
        left_keys=tuple(left_keys),
        right_keys=tuple(right_keys),
        compact_lefts=tuple(compact_lefts),
        pair_keys=frozenset(zip(left_keys, right_keys)),
        left_key_set=frozenset(left_keys),
        by_left_key={key: tuple(rows) for key, rows in by_left_key.items()},
        left_length_buckets={length: tuple(rows) for length, rows in buckets.items()},
        edit_cap=int(data["edit_cap"]),
    )


def _edge_key(first_id: str, second_id: str) -> tuple[str, str]:
    return (first_id, second_id) if first_id <= second_id else (second_id, first_id)


def edges_from_graph(
    graph: CompatibilityGraph,
) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str], float]]:
    """Convert a graph's index-keyed edges to sorted table-id-pair keys."""
    positive: dict[tuple[str, str], float] = {}
    negative: dict[tuple[str, str], float] = {}
    for (first, second), weight in graph.positive_edges.items():
        positive[_edge_key(graph.tables[first].table_id, graph.tables[second].table_id)] = weight
    for (first, second), weight in graph.negative_edges.items():
        negative[_edge_key(graph.tables[first].table_id, graph.tables[second].table_id)] = weight
    return positive, negative


# ---------------------------------------------------------------------------------------
# The artifact model: a lazy facade over the sectioned store
# ---------------------------------------------------------------------------------------
class SynthesisArtifact:
    """Everything persisted from one pipeline run.

    Constructed eagerly (all fields in memory — :meth:`from_run`,
    :meth:`from_payload`, or the keyword constructor) or lazily over an
    :class:`~repro.store.format.ArtifactReader` (:meth:`from_reader`, the
    :func:`load_artifact` path for v2 files).  A lazy artifact materializes a
    section's field group on first attribute access and never touches the
    rest: serving consumers that read only :attr:`mappings` + ``curated_ids``
    leave candidates, profiles, and edges encoded on the reader.  First access
    is not synchronized — share a lazy artifact across threads only after the
    sections you need have been touched once.

    Edges are keyed by **candidate table ids** (sorted pairs), not vertex
    indices, so they remain meaningful when the candidate list is reordered or
    partially reused by the incremental refresh path.
    """

    # Materialized lazily from the reader; listed for documentation.
    config: SynthesisConfig
    corpus_name: str
    corpus_fingerprint: str
    #: Hash of the synonym dictionary the run used ("" = none); profiles and
    #: scores embed synonym canonicalization, so refresh must compare it.
    synonyms_fingerprint: str
    table_fingerprints: dict[str, str]
    candidates: list[BinaryTable]
    profiles: dict[str, dict]
    positive_edges: dict[tuple[str, str], float]
    negative_edges: dict[tuple[str, str], float]
    mappings: list[MappingRelationship]
    curated_ids: list[str]
    extraction_stats: dict[str, float]
    timings: dict[str, float]
    metadata: dict[str, float]

    def __init__(
        self,
        config: SynthesisConfig,
        corpus_name: str,
        corpus_fingerprint: str,
        table_fingerprints: Mapping[str, str],
        candidates: list[BinaryTable],
        synonyms_fingerprint: str = "",
        profiles: Mapping[str, dict] | None = None,
        positive_edges: Mapping[tuple[str, str], float] | None = None,
        negative_edges: Mapping[tuple[str, str], float] | None = None,
        mappings: list[MappingRelationship] | None = None,
        curated_ids: list[str] | None = None,
        extraction_stats: Mapping[str, float] | None = None,
        timings: Mapping[str, float] | None = None,
        metadata: Mapping[str, float] | None = None,
    ) -> None:
        self._reader: ArtifactReader | None = None
        self._dirty: set[str] = set(SECTION_ORDER)
        #: Pre-encoded stored sections carried over from a detached reader
        #: (section name -> (stored bytes, codec, item count, checksum));
        #: consulted by :meth:`stored_section_for_reuse` so save-side verbatim
        #: copying survives :meth:`evolve` dropping the reader.
        self._raw_sections: dict[str, tuple[bytes, str, int | None, str]] = {}
        self.config = config
        self.corpus_name = corpus_name
        self.corpus_fingerprint = corpus_fingerprint
        self.synonyms_fingerprint = synonyms_fingerprint
        self.table_fingerprints = dict(table_fingerprints)
        self.candidates = list(candidates)
        self.profiles = dict(profiles or {})
        self.positive_edges = dict(positive_edges or {})
        self.negative_edges = dict(negative_edges or {})
        self.mappings = list(mappings or [])
        self.curated_ids = list(curated_ids or [])
        self.extraction_stats = dict(extraction_stats or {})
        self.timings = dict(timings or {})
        self.metadata = dict(metadata or {})

    @classmethod
    def from_reader(cls, reader: ArtifactReader) -> "SynthesisArtifact":
        """Wrap a sectioned container; every field group decodes on first use."""
        artifact = cls.__new__(cls)
        artifact._reader = reader
        artifact._dirty = set()
        artifact._raw_sections = {}
        return artifact

    # -- Laziness machinery -------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        # Assigning a model field dirties its section, so a mutate-then-save on
        # a lazy artifact persists the change instead of silently re-copying
        # the old stored bytes (the v1 dataclass was freely mutable; direct
        # assignment must keep working).  In-place *container* mutation on a
        # clean lazy section is still invisible to save-side reuse — reassign
        # the field or go through evolve() for that.
        section = FIELD_SECTION.get(name)
        if section is not None:
            dirty = self.__dict__.get("_dirty")
            if dirty is not None:
                dirty.add(section)
                self.__dict__.get("_raw_sections", {}).pop(section, None)
        object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        # Only reached when the attribute is not in __dict__: materialize the
        # owning section's whole field group from the reader.
        if name.startswith("_"):
            raise AttributeError(name)
        section = FIELD_SECTION.get(name)
        reader = self.__dict__.get("_reader")
        if section is None or reader is None:
            raise AttributeError(name)
        fields = reader.decode(section)
        for field_name, value in fields.items():
            # Shallow-copy containers so artifacts sharing one reader (evolve)
            # never alias each other's top-level lists/dicts.
            if isinstance(value, list):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            self.__dict__.setdefault(field_name, value)
        return self.__dict__[name]

    @property
    def reader(self) -> ArtifactReader | None:
        """The backing section reader (``None`` for eager/v1 artifacts)."""
        return self._reader

    def verify(self) -> None:
        """Checksum the backing container without decoding (no-op when eager).

        v1 artifacts were fully checksummed at load; for v2 this validates
        every section's stored bytes against the table of contents, raising
        :class:`ArtifactCorruptionError` naming the damaged section.
        """
        if self._reader is not None:
            self._reader.verify()

    def candidate_count(self) -> int:
        """Number of stored candidates, without decoding them when lazy."""
        if "candidates" not in self.__dict__ and self._reader is not None:
            count = self._reader.item_count("candidates")
            if count is not None:
                return count
        return len(self.candidates)

    def evolve(self, **changes) -> "SynthesisArtifact":
        """A copy with ``changes`` applied, sharing unchanged lazy sections.

        Only the sections owning a changed field are marked dirty; on the next
        :func:`save_artifact` every clean section is copied verbatim from the
        backing reader (no decode, no re-encode).  This is how
        :func:`repro.store.incremental.refresh_artifact` rewrites only the
        sections it actually touched.
        """
        unknown = set(changes) - set(FIELD_SECTION)
        if unknown:
            raise TypeError(f"unknown artifact fields: {sorted(unknown)}")
        def own_copy(value):
            # Same no-aliasing guarantee as __getattr__: artifacts never share
            # top-level lists/dicts, whether a field came from the reader or
            # from an already-materialized base.
            if isinstance(value, list):
                return list(value)
            if isinstance(value, dict):
                return dict(value)
            return value

        clone = type(self).__new__(type(self))
        clone._reader = self._reader
        clone._dirty = set(self._dirty)
        clone._raw_sections = dict(self._raw_sections)
        touched = {FIELD_SECTION[field_name] for field_name in changes}
        clone._dirty |= touched
        # object.__setattr__ throughout: evolve manages _dirty explicitly and
        # must not let the assignment hook dirty the clean copied sections.
        for section, group in SECTION_FIELDS.items():
            if section in touched:
                for field_name in group:
                    if field_name in changes:
                        object.__setattr__(
                            clone, field_name, own_copy(changes[field_name])
                        )
                    else:
                        # Group-level copy-on-write: an untouched field of a
                        # dirty section must come along (possibly decoding it).
                        object.__setattr__(
                            clone, field_name, own_copy(getattr(self, field_name))
                        )
            else:
                for field_name in group:
                    if field_name in self.__dict__:
                        object.__setattr__(
                            clone, field_name, own_copy(self.__dict__[field_name])
                        )
        if clone._reader is not None:
            clean = [name for name in SECTION_ORDER if name not in clone._dirty]
            if all(
                field_name in clone.__dict__
                for name in clean
                for field_name in SECTION_FIELDS[name]
            ):
                # Every clean section is materialized on the clone, so the
                # reader is only needed for save-side verbatim copying.  Carry
                # just those sections' stored bytes and drop the reader — an
                # incremental refresh must not pin the entire old container in
                # memory for the lifetime of the refreshed artifact.
                for name in clean:
                    info = clone._reader.sections.get(name)
                    if info is not None:
                        clone._raw_sections[name] = (
                            clone._reader.stored_bytes(name),
                            info.codec,
                            info.items,
                            info.checksum,
                        )
                clone._reader = None
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "lazy" if self._reader is not None else "eager"
        loaded = sorted(
            section
            for section, group in SECTION_FIELDS.items()
            if group[0] in self.__dict__
        )
        return f"SynthesisArtifact({state}, loaded={loaded})"

    # -- Views ------------------------------------------------------------------------
    @property
    def curated(self) -> list[MappingRelationship]:
        """The curated subset of :attr:`mappings`, in curation (popularity) order."""
        by_id = {mapping.mapping_id: mapping for mapping in self.mappings}
        return [
            by_id[mapping_id] for mapping_id in self.curated_ids if mapping_id in by_id
        ]

    def candidates_by_source(self) -> dict[str, list[BinaryTable]]:
        """Group candidates by their source table id, preserving stored order."""
        grouped: dict[str, list[BinaryTable]] = {}
        for candidate in self.candidates:
            grouped.setdefault(candidate.source_table_id, []).append(candidate)
        return grouped

    def edge_scores(self) -> dict[tuple[str, str], tuple[float, float]]:
        """Merge the two edge maps into ``id pair -> (w+, w−)`` for reuse."""
        scores: dict[tuple[str, str], tuple[float, float]] = {}
        for key, weight in self.positive_edges.items():
            scores[key] = (weight, 0.0)
        for key, weight in self.negative_edges.items():
            positive = scores.get(key, (0.0, 0.0))[0]
            scores[key] = (positive, weight)
        return scores

    def profile_for(self, candidate: BinaryTable) -> TableProfile | None:
        """Reconstruct the stored scoring profile of one candidate, if present."""
        data = self.profiles.get(candidate.table_id)
        if data is None:
            return None
        return _decode_profile(candidate, data)

    def build_graph(self) -> CompatibilityGraph:
        """Materialize the stored edges as a :class:`CompatibilityGraph`."""
        graph = CompatibilityGraph(tables=list(self.candidates))
        index_of = {
            candidate.table_id: position
            for position, candidate in enumerate(self.candidates)
        }
        try:
            for (first_id, second_id), weight in self.positive_edges.items():
                graph.add_positive(index_of[first_id], index_of[second_id], weight)
            for (first_id, second_id), weight in self.negative_edges.items():
                graph.add_negative(index_of[first_id], index_of[second_id], weight)
        except KeyError as exc:
            raise ArtifactCorruptionError(
                f"edge references unknown candidate table {exc.args[0]!r}"
            ) from exc
        return graph

    def to_result(self) -> "PipelineResult":
        """Rebuild the :class:`~repro.core.pipeline.PipelineResult` view."""
        from repro.core.pipeline import PipelineResult

        return PipelineResult(
            mappings=list(self.mappings),
            curated=self.curated,
            candidates=list(self.candidates),
            extraction_stats=dict(self.extraction_stats),
            timings=dict(self.timings),
            metadata=dict(self.metadata),
        )

    # -- Construction -----------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        *,
        config: SynthesisConfig,
        corpus_name: str,
        corpus_fingerprint: str,
        table_fingerprints: Mapping[str, str],
        candidates: Iterable[BinaryTable],
        graph: CompatibilityGraph,
        synonyms_fingerprint: str = "",
        profiles: Mapping[str, TableProfile] | None = None,
        mappings: Iterable[MappingRelationship],
        curated: Iterable[MappingRelationship],
        extraction_stats: Mapping[str, float] | None = None,
        timings: Mapping[str, float] | None = None,
        metadata: Mapping[str, float] | None = None,
    ) -> "SynthesisArtifact":
        """Assemble an artifact from live pipeline objects (no serialization)."""
        positive, negative = edges_from_graph(graph)
        return cls(
            config=config,
            corpus_name=corpus_name,
            corpus_fingerprint=corpus_fingerprint,
            table_fingerprints=dict(table_fingerprints),
            candidates=list(candidates),
            synonyms_fingerprint=synonyms_fingerprint,
            profiles={
                table_id: _encode_profile(profile)
                for table_id, profile in (profiles or {}).items()
            },
            positive_edges=positive,
            negative_edges=negative,
            mappings=list(mappings),
            curated_ids=[mapping.mapping_id for mapping in curated],
            extraction_stats=dict(extraction_stats or {}),
            timings=dict(timings or {}),
            metadata=dict(metadata or {}),
        )

    # -- v1 payload (de)serialization ---------------------------------------------------
    def to_payload(self) -> dict:
        """Encode the artifact as the v1 plain JSON-encodable payload dict.

        Materializes every lazy section — the v1 blob is eager by definition.
        """
        return {
            "config": encode_config(self.config),
            "corpus_name": self.corpus_name,
            "corpus_fingerprint": self.corpus_fingerprint,
            "table_fingerprints": dict(self.table_fingerprints),
            "synonyms_fingerprint": self.synonyms_fingerprint,
            "candidates": [encode_binary_table(c) for c in self.candidates],
            "profiles": {table_id: dict(data) for table_id, data in self.profiles.items()},
            "positive_edges": [
                [first, second, weight]
                for (first, second), weight in sorted(self.positive_edges.items())
            ],
            "negative_edges": [
                [first, second, weight]
                for (first, second), weight in sorted(self.negative_edges.items())
            ],
            "mappings": [encode_mapping(m) for m in self.mappings],
            "curated_ids": list(self.curated_ids),
            "extraction_stats": jsonable(self.extraction_stats),
            "timings": jsonable(self.timings),
            "metadata": jsonable(self.metadata),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SynthesisArtifact":
        """Decode a payload dict produced by :meth:`to_payload` (eagerly)."""
        try:
            return cls(
                config=decode_config(payload["config"]),
                corpus_name=payload["corpus_name"],
                corpus_fingerprint=payload["corpus_fingerprint"],
                table_fingerprints=dict(payload["table_fingerprints"]),
                candidates=[decode_binary_table(c) for c in payload["candidates"]],
                synonyms_fingerprint=payload.get("synonyms_fingerprint", ""),
                profiles={
                    table_id: dict(data)
                    for table_id, data in payload.get("profiles", {}).items()
                },
                positive_edges={
                    (first, second): weight
                    for first, second, weight in payload["positive_edges"]
                },
                negative_edges={
                    (first, second): weight
                    for first, second, weight in payload["negative_edges"]
                },
                mappings=[decode_mapping(m) for m in payload["mappings"]],
                curated_ids=list(payload["curated_ids"]),
                extraction_stats=dict(payload.get("extraction_stats", {})),
                timings=dict(payload.get("timings", {})),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptionError(f"malformed artifact payload: {exc}") from exc

    # -- Save-side section reuse --------------------------------------------------------
    def stored_section_for_reuse(
        self, name: str, compress: bool
    ) -> tuple[bytes, str, int | None, str] | None:
        """The section's raw stored bytes when they can be copied verbatim.

        Available when the section is clean (not overridden via
        :meth:`evolve` or field assignment), its stored bytes are at hand —
        on the backing reader or carried over from one by :meth:`evolve` —
        and the stored compression matches the requested one.  Returns
        ``(stored bytes, codec, item count, checksum)``; the checksum is the
        already-verified digest, so the writer need not rehash the bytes.
        """
        if name in self._dirty:
            return None
        carried = self._raw_sections.get(name)
        if carried is not None:
            if carried[1].endswith("+gz") == compress:
                return carried
            return None
        if self._reader is None:
            return None
        info = self._reader.sections.get(name)
        if info is None or info.codec.endswith("+gz") != compress:
            return None
        return self._reader.stored_bytes(name), info.codec, info.items, info.checksum


# ---------------------------------------------------------------------------------------
# Publish / notify hooks
# ---------------------------------------------------------------------------------------
# Registry of in-process listeners per resolved artifact path.  save_artifact
# notifies them after its atomic rename, so a serving daemon watching the same
# path in the same process hot-swaps immediately instead of waiting for its
# next poll tick.  Cross-process consumers still rely on polling.
_publish_lock = threading.Lock()
_publish_subscribers: dict[Path, list[Callable[[Path], None]]] = {}


def subscribe_artifact(
    path: str | Path, callback: Callable[[Path], None]
) -> Callable[[], None]:
    """Call ``callback(path)`` after every :func:`save_artifact` to ``path``.

    The callback fires on the saving thread *after* the new version is fully
    (atomically) in place, so a reload triggered by it always reads a complete
    artifact.  Returns an idempotent unsubscribe callable.
    """
    key = Path(path).resolve()
    with _publish_lock:
        _publish_subscribers.setdefault(key, []).append(callback)

    def unsubscribe() -> None:
        with _publish_lock:
            listeners = _publish_subscribers.get(key)
            if listeners is None:
                return
            try:
                listeners.remove(callback)
            except ValueError:
                return
            if not listeners:
                del _publish_subscribers[key]

    return unsubscribe


def _notify_artifact_published(path: Path) -> None:
    with _publish_lock:
        listeners = list(_publish_subscribers.get(path.resolve(), ()))
    for callback in listeners:
        try:
            callback(path)
        except Exception:
            # A broken subscriber must not be able to fail the writer; the
            # polling fallback will still pick the new version up.
            pass


# ---------------------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------------------
def _canonical_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _save_v1(artifact: SynthesisArtifact, path: Path, compress: bool) -> None:
    payload = artifact.to_payload()
    body = _canonical_bytes(payload)
    document = {
        "magic": ARTIFACT_MAGIC,
        "version": 1,
        "checksum": hashlib.sha256(body).hexdigest(),
        "payload": payload,
    }
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if compress:
        # mtime=0 keeps the compressed bytes deterministic for identical payloads.
        encoded = gzip.compress(encoded, mtime=0)
    atomic_write_bytes(path, encoded)


def save_artifact(
    artifact: SynthesisArtifact,
    path: str | Path,
    *,
    compress: bool = True,
    version: int = ARTIFACT_VERSION,
) -> Path:
    """Write ``artifact`` to ``path`` and return the path.

    ``version`` selects the format: 2 (default) writes the sectioned
    container, 1 writes the legacy single-blob JSON document.  The parent
    directory is created if needed, and the write goes through an fsynced
    temporary sibling, an atomic rename, and a directory fsync
    (:func:`repro.store.format.atomic_write_bytes`), so neither a crash
    mid-write nor power loss right after the rename leaves a torn artifact
    at the target path.

    When the artifact is backed by a v2 reader (loaded from disk, or an
    :meth:`SynthesisArtifact.evolve` of one), sections it never overrode are
    copied to the new file verbatim — no decode, no re-encode.
    """
    path = Path(path)
    if version == 1:
        _save_v1(artifact, path, compress)
    elif version == CONTAINER_VERSION:
        writer = ArtifactWriter(path, compress=compress)
        for name in SECTION_ORDER:
            reusable = artifact.stored_section_for_reuse(name, compress)
            if reusable is not None:
                stored, codec, items, checksum = reusable
                writer.add_stored(name, stored, codec, items=items, checksum=checksum)
                continue
            fields = {
                field_name: getattr(artifact, field_name)
                for field_name in SECTION_FIELDS[name]
            }
            writer.add(
                name,
                encode_section(name, fields),
                codec="bin" if name in _BINARY_SECTIONS else "json",
                items=section_item_count(name, fields),
            )
        writer.commit()
    else:
        raise ValueError(
            f"cannot write artifact version {version!r}; writable versions: "
            f"{sorted(SUPPORTED_VERSIONS)}"
        )
    _notify_artifact_published(path)
    return path


def _load_v1(raw: bytes, path: str | Path) -> SynthesisArtifact:
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptionError(f"artifact {path} is not valid JSON") from exc
    if not isinstance(document, dict) or document.get("magic") != ARTIFACT_MAGIC:
        raise ArtifactError(f"{path} is not a synthesis artifact")
    version = document.get("version")
    if version != 1:
        # JSON-document artifacts only ever carried version 1; anything else
        # is a future (or mislabeled) format this build cannot decode.
        raise ArtifactVersionError(
            f"artifact {path} has format version {version!r}; this build reads "
            f"versions {sorted(SUPPORTED_VERSIONS)}",
            found=version if isinstance(version, int) else None,
            supported=SUPPORTED_VERSIONS,
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise ArtifactCorruptionError(f"artifact {path} has no payload")
    checksum = hashlib.sha256(_canonical_bytes(payload)).hexdigest()
    if checksum != document.get("checksum"):
        raise ArtifactCorruptionError(f"artifact {path} failed its checksum")
    return SynthesisArtifact.from_payload(payload)


def load_artifact(path: str | Path) -> SynthesisArtifact:
    """Load an artifact written by :func:`save_artifact` (either version).

    v2 containers come back **lazy**: only the table of contents is parsed
    here; each section decodes on first attribute access.  v1 documents are
    decoded eagerly (their single checksum requires it).

    Raises
    ------
    ArtifactError
        If the file is not an artifact at all (wrong magic).
    ArtifactVersionError
        If the artifact was written by an unsupported format version
        (``.supported`` carries the versions this build reads).
    ArtifactCorruptionError
        If the bytes are damaged or a checksum does not match (``.section``
        names the damaged section for v2 files).
    """
    raw = Path(path).read_bytes()
    if raw.startswith(CONTAINER_MAGIC):
        return SynthesisArtifact.from_reader(ArtifactReader(raw, source=str(path)))
    if raw[:2] == _GZIP_MAGIC:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as exc:
            raise ArtifactCorruptionError(f"damaged gzip stream in {path}") from exc
        if raw.startswith(CONTAINER_MAGIC):  # a gzip-wrapped v2 container
            return SynthesisArtifact.from_reader(ArtifactReader(raw, source=str(path)))
    return _load_v1(raw, path)
