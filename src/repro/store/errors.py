"""Artifact-store error types.

Kept in their own module so the low-level container/codec layers
(:mod:`repro.store.codec`, :mod:`repro.store.format`) can raise them without
importing the model-level :mod:`repro.store.artifact`, which imports those
layers in turn.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactCorruptionError",
]


class ArtifactError(Exception):
    """Base class for artifact store failures."""


class ArtifactVersionError(ArtifactError):
    """The artifact was written by a format version this build cannot read.

    Attributes
    ----------
    found:
        The version recorded in the file (``None`` when it could not be read).
    supported:
        The set of format versions this build reads.
    """

    def __init__(
        self,
        message: str,
        *,
        found: int | None = None,
        supported: Iterable[int] = (),
    ) -> None:
        super().__init__(message)
        self.found = found
        self.supported = frozenset(supported)


class ArtifactCorruptionError(ArtifactError):
    """The artifact bytes are damaged, truncated, or fail a checksum.

    When the damage is localized to one v2 section, :attr:`section` names it
    (and the message includes it), so operators know whether the hot serving
    payload or only a cold section is affected.
    """

    def __init__(self, message: str, *, section: str | None = None) -> None:
        super().__init__(message)
        self.section = section
