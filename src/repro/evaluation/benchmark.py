"""Benchmark construction (paper §5.1 "Benchmarks").

The paper curates 80 Web benchmark cases (geocoding systems from Wikipedia plus
"list of A and B" query-log patterns) and 30 best-effort Enterprise cases, each a
ground-truth mapping with rich synonyms.  The paper builds each case by combining
high-quality web tables *from the corpus itself* with knowledge-base instances, so
the ground truth contains exactly the synonymous mentions that actually occur in
tables plus the canonical instances.

This module mirrors that construction: the ground truth of a case is the seed
relation's canonical pair set, optionally expanded with those synonym combinations
whose surface forms actually occur somewhere in the evaluated corpus (pass the
corpus to :func:`build_web_benchmark` / :func:`build_enterprise_benchmark`).
Without a corpus, the full synonym expansion is used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import SeedRelation, all_seed_relations
from repro.text.matching import normalize_value

__all__ = ["BenchmarkCase", "build_web_benchmark", "build_enterprise_benchmark"]


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark case: a desirable mapping relationship with its ground truth."""

    name: str
    left_attr: str
    right_attr: str
    truth: frozenset[tuple[str, str]]
    category: str

    def __len__(self) -> int:
        return len(self.truth)


def _corpus_value_sets(corpus: TableCorpus | None) -> dict[str, set[str]] | None:
    """Normalized cell values observed per seed relation (by table provenance).

    The paper builds each ground-truth case by manually selecting high-quality
    corpus tables *of that relationship* and merging them with knowledge-base
    instances.  The generator records which seed relation each table was emitted
    for, so the same construction is automated here: a synonym surface form joins a
    case's ground truth only if it occurs in a table of that relation.
    """
    if corpus is None:
        return None
    observed: dict[str, set[str]] = {}
    for table in corpus:
        relation_name = table.metadata.get("seed_relation", "")
        if not relation_name or relation_name.startswith("__"):
            continue
        bucket = observed.setdefault(relation_name, set())
        for column in table.columns:
            for value in column.values:
                bucket.add(normalize_value(value))
    return observed


def _case_from_relation(
    relation: SeedRelation,
    include_synonyms: bool,
    observed_by_relation: dict[str, set[str]] | None,
) -> BenchmarkCase:
    observed_values = None
    if observed_by_relation is not None:
        observed_values = observed_by_relation.get(relation.name, set())
    truth = set(relation.pairs)
    if include_synonyms:
        for left, right in relation.pairs:
            left_forms = (left,) + relation.left_synonyms.get(left, ())
            right_forms = (right,) + relation.right_synonyms.get(right, ())
            for lf in left_forms:
                for rf in right_forms:
                    if (lf, rf) in truth:
                        continue
                    if observed_values is not None:
                        if (
                            normalize_value(lf) not in observed_values
                            or normalize_value(rf) not in observed_values
                        ):
                            continue
                    truth.add((lf, rf))
    return BenchmarkCase(
        name=relation.name,
        left_attr=relation.left_attr,
        right_attr=relation.right_attr,
        truth=frozenset(truth),
        category=relation.category,
    )


def build_web_benchmark(
    corpus: TableCorpus | None = None, include_synonyms: bool = True
) -> list[BenchmarkCase]:
    """Benchmark cases for the Web corpus (geocoding + query-log relations).

    Passing the evaluated corpus restricts synonym expansion to surface forms that
    actually occur in it, mirroring how the paper's ground truth is assembled from
    corpus tables plus knowledge bases.
    """
    observed = _corpus_value_sets(corpus)
    cases = [
        _case_from_relation(relation, include_synonyms, observed)
        for relation in all_seed_relations()
        if relation.category in ("geocoding", "querylog")
    ]
    return sorted(cases, key=lambda case: case.name)


def build_enterprise_benchmark(
    corpus: TableCorpus | None = None, include_synonyms: bool = True
) -> list[BenchmarkCase]:
    """Benchmark cases for the Enterprise corpus (paper §5.5)."""
    observed = _corpus_value_sets(corpus)
    cases = [
        _case_from_relation(relation, include_synonyms, observed)
        for relation in all_seed_relations(category="enterprise")
    ]
    return sorted(cases, key=lambda case: case.name)
