"""Evaluation runner: run methods over a corpus and score them on a benchmark."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.base import BaselineMethod, candidates_from_corpus
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.evaluation.benchmark import BenchmarkCase
from repro.evaluation.metrics import MappingScore, best_mapping_score

__all__ = ["MethodEvaluation", "EvaluationRunner"]


@dataclass
class MethodEvaluation:
    """Per-method evaluation results across all benchmark cases."""

    method_name: str
    case_scores: dict[str, MappingScore] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    num_relationships: int = 0

    # -- Aggregates ---------------------------------------------------------------------
    @property
    def avg_f_score(self) -> float:
        """Average F-score across all cases (zero-score cases included)."""
        if not self.case_scores:
            return 0.0
        return sum(score.f_score for score in self.case_scores.values()) / len(self.case_scores)

    @property
    def avg_recall(self) -> float:
        """Average recall across all cases."""
        if not self.case_scores:
            return 0.0
        return sum(score.recall for score in self.case_scores.values()) / len(self.case_scores)

    @property
    def avg_precision(self) -> float:
        """Average precision over cases the method actually covered.

        The paper (footnote 5) excludes cases with near-zero precision from the
        average-precision computation for table/KB methods that simply miss a
        relationship; the same convention is applied uniformly here.
        """
        covered = [score.precision for score in self.case_scores.values() if score.precision > 0.0]
        if not covered:
            return 0.0
        return sum(covered) / len(covered)

    def summary(self) -> dict[str, float]:
        """Return the aggregate numbers as a dictionary."""
        return {
            "avg_f_score": self.avg_f_score,
            "avg_precision": self.avg_precision,
            "avg_recall": self.avg_recall,
            "runtime_seconds": self.runtime_seconds,
            "num_relationships": float(self.num_relationships),
        }


class EvaluationRunner:
    """Runs a set of methods over one corpus and scores them on a benchmark.

    Candidate extraction is performed once and shared across all methods that
    operate on candidates, mirroring how the paper shares the preprocessed
    two-column tables across approaches.
    """

    def __init__(
        self,
        corpus: TableCorpus,
        benchmark: list[BenchmarkCase],
        config: SynthesisConfig | None = None,
    ) -> None:
        if not benchmark:
            raise ValueError("benchmark must contain at least one case")
        self.corpus = corpus
        self.benchmark = benchmark
        self.config = config or SynthesisConfig()
        self._candidates: list[BinaryTable] | None = None

    @property
    def candidates(self) -> list[BinaryTable]:
        """Candidate binary tables extracted from the corpus (cached)."""
        if self._candidates is None:
            self._candidates = candidates_from_corpus(self.corpus, self.config)
        return self._candidates

    # -- Evaluation --------------------------------------------------------------------
    def evaluate_method(self, method: BaselineMethod) -> MethodEvaluation:
        """Run one method and score it on every benchmark case."""
        start = time.perf_counter()
        relationships = method.synthesize(self.corpus, candidates=self.candidates)
        runtime = time.perf_counter() - start
        evaluation = MethodEvaluation(
            method_name=method.name,
            runtime_seconds=runtime,
            num_relationships=len(relationships),
        )
        for case in self.benchmark:
            evaluation.case_scores[case.name] = best_mapping_score(relationships, case.truth)
        return evaluation

    def evaluate_method_family(
        self, methods: list[BaselineMethod], family_name: str | None = None
    ) -> MethodEvaluation:
        """Evaluate several parameterizations and keep the best (by avg F-score).

        Mirrors the paper's treatment of threshold-based baselines ("we tested
        different thresholds in the range of [0, 1] and report the best result").
        The reported runtime is the total across the sweep.
        """
        if not methods:
            raise ValueError("methods must not be empty")
        evaluations = [self.evaluate_method(method) for method in methods]
        best = max(evaluations, key=lambda evaluation: evaluation.avg_f_score)
        total_runtime = sum(evaluation.runtime_seconds for evaluation in evaluations)
        best.runtime_seconds = total_runtime
        if family_name is not None:
            best.method_name = family_name
        return best

    def evaluate_all(
        self,
        methods: dict[str, BaselineMethod | list[BaselineMethod]],
    ) -> dict[str, MethodEvaluation]:
        """Evaluate a dictionary of methods (or method families) keyed by name."""
        results: dict[str, MethodEvaluation] = {}
        for name, method in methods.items():
            if isinstance(method, list):
                results[name] = self.evaluate_method_family(method, family_name=name)
            else:
                evaluation = self.evaluate_method(method)
                evaluation.method_name = name
                results[name] = evaluation
        return results
