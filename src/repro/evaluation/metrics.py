"""Precision / recall / F-score for synthesized mappings (paper §5.1 "Metrics").

Given a ground-truth mapping ``B*`` and a synthesized relationship ``B``, precision
is ``|B ∩ B*| / |B|``, recall is ``|B ∩ B*| / |B*|`` and F-score is their harmonic
mean.  Values are compared after normalization (case, punctuation, footnote
markers) so that cosmetic noise does not dominate the comparison; a candidate is
also scored with its columns swapped and the better orientation is used, because
methods emit both directions of 1:1 relationships.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.mapping import MappingRelationship
from repro.text.matching import normalize_value

__all__ = ["MappingScore", "score_mapping", "best_mapping_score"]


@dataclass(frozen=True)
class MappingScore:
    """Precision / recall / F-score triple."""

    precision: float
    recall: float
    f_score: float
    mapping_id: str = ""

    @classmethod
    def zero(cls, mapping_id: str = "") -> "MappingScore":
        """The all-zero score (used when a method produced nothing useful)."""
        return cls(0.0, 0.0, 0.0, mapping_id)


def _normalize_pairs(pairs: Iterable[tuple[str, str]]) -> set[tuple[str, str]]:
    return {
        (normalize_value(left), normalize_value(right))
        for left, right in pairs
        if normalize_value(left) and normalize_value(right)
    }


def _score_sets(
    candidate: set[tuple[str, str]], truth: set[tuple[str, str]]
) -> tuple[float, float, float]:
    if not candidate or not truth:
        return 0.0, 0.0, 0.0
    overlap = len(candidate & truth)
    precision = overlap / len(candidate)
    recall = overlap / len(truth)
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f_score = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f_score


def score_mapping(
    candidate_pairs: Iterable[tuple[str, str]] | MappingRelationship,
    truth_pairs: Iterable[tuple[str, str]],
    allow_swapped: bool = True,
) -> MappingScore:
    """Score one candidate relationship against a ground-truth mapping."""
    mapping_id = ""
    if isinstance(candidate_pairs, MappingRelationship):
        mapping_id = candidate_pairs.mapping_id
        raw_pairs = [pair.as_tuple() for pair in candidate_pairs.pairs]
    else:
        raw_pairs = list(candidate_pairs)
    candidate = _normalize_pairs(raw_pairs)
    truth = _normalize_pairs(truth_pairs)

    precision, recall, f_score = _score_sets(candidate, truth)
    if allow_swapped:
        swapped = {(right, left) for left, right in candidate}
        s_precision, s_recall, s_f = _score_sets(swapped, truth)
        if s_f > f_score:
            precision, recall, f_score = s_precision, s_recall, s_f
    return MappingScore(precision=precision, recall=recall, f_score=f_score,
                        mapping_id=mapping_id)


def best_mapping_score(
    mappings: Iterable[MappingRelationship],
    truth_pairs: Iterable[tuple[str, str]],
    allow_swapped: bool = True,
) -> MappingScore:
    """Pick the candidate relationship with the best F-score for a benchmark case.

    This mirrors the paper's evaluation protocol: for every method, each benchmark
    case is scored against the single best relationship that method produced.
    """
    truth = list(truth_pairs)
    best = MappingScore.zero()
    for mapping in mappings:
        score = score_mapping(mapping, truth, allow_swapped=allow_swapped)
        if score.f_score > best.f_score or (
            score.f_score == best.f_score and score.precision > best.precision
        ):
            best = score
    return best
