"""Experiment drivers: one function per table/figure of the paper's evaluation.

Every driver returns plain data structures (dataclasses / dictionaries) so that the
benchmark harness in ``benchmarks/`` can both regenerate the numbers and print the
same rows/series the paper reports.  See ``DESIGN.md`` for the experiment index and
``EXPERIMENTS.md`` for paper-vs-measured notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    CorrelationClusteringBaseline,
    EntTableBaseline,
    FreebaseBaseline,
    SchemaCCBaseline,
    SynthesisMethod,
    SynthesisPosMethod,
    UnionDomainBaseline,
    UnionWebBaseline,
    WebTableBaseline,
    WikiTableBaseline,
    WiseIntegratorBaseline,
    YagoBaseline,
)
from repro.baselines.base import BaselineMethod
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.corpus import TableCorpus
from repro.corpus.generator import (
    CorpusGenerationSpec,
    EnterpriseCorpusGenerator,
    WebCorpusGenerator,
)
from repro.corpus.seeds import get_seed_relation
from repro.core.binary_table import BinaryTable
from repro.evaluation.benchmark import (
    BenchmarkCase,
    build_enterprise_benchmark,
    build_web_benchmark,
)
from repro.evaluation.metrics import MappingScore, best_mapping_score
from repro.evaluation.runner import EvaluationRunner, MethodEvaluation
from repro.extraction.candidates import CandidateExtractor
from repro.synthesis.curation import popularity_rank
from repro.synthesis.expansion import TableExpander

__all__ = [
    "ExperimentScale",
    "make_web_corpus",
    "make_enterprise_corpus",
    "default_methods",
    "MethodComparisonResult",
    "run_method_comparison",
    "run_runtime_comparison",
    "ScalabilityResult",
    "run_scalability",
    "run_enterprise_comparison",
    "collect_enterprise_examples",
    "run_per_case_comparison",
    "ConflictResolutionStudy",
    "run_conflict_resolution_study",
    "SensitivityResult",
    "run_sensitivity",
    "run_extraction_stats",
    "ExpansionStudy",
    "run_expansion_study",
    "collect_web_examples",
]


# ---------------------------------------------------------------------------------------
# Corpus / configuration helpers
# ---------------------------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentScale:
    """Controls the size of the generated corpora used in experiments."""

    tables_per_relation: int = 6
    max_rows: int = 25
    seed: int = 7

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Small scale for quick runs and CI."""
        return cls(tables_per_relation=3, max_rows=18, seed=7)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """The default scale used by the benchmark harness."""
        return cls()

    def to_spec(self) -> CorpusGenerationSpec:
        """Convert to a corpus-generation spec."""
        return CorpusGenerationSpec(
            tables_per_relation=self.tables_per_relation,
            max_rows=self.max_rows,
            seed=self.seed,
        )


def make_web_corpus(scale: ExperimentScale | None = None) -> TableCorpus:
    """Generate the synthetic Web corpus used by the Web experiments."""
    scale = scale or ExperimentScale.default()
    return WebCorpusGenerator(scale.to_spec()).generate()


def make_enterprise_corpus(scale: ExperimentScale | None = None) -> TableCorpus:
    """Generate the synthetic Enterprise corpus used by §5.5-style experiments."""
    scale = scale or ExperimentScale.default()
    return EnterpriseCorpusGenerator(scale.to_spec()).generate()


def experiment_config() -> SynthesisConfig:
    """The synthesis configuration used across experiments."""
    return SynthesisConfig(min_domains=2, min_mapping_size=5)


def default_methods(
    config: SynthesisConfig | None = None,
) -> dict[str, BaselineMethod | list[BaselineMethod]]:
    """All methods compared in the paper's Figure 7, keyed by their display name."""
    config = config or experiment_config()
    return {
        "Synthesis": SynthesisMethod(config),
        "WikiTable": WikiTableBaseline(config),
        "WebTable": WebTableBaseline(config),
        "UnionDomain": UnionDomainBaseline(config),
        "UnionWeb": UnionWebBaseline(config),
        "SynthesisPos": SynthesisPosMethod(config),
        "Correlation": CorrelationClusteringBaseline(config),
        "SchemaPosCC": SchemaCCBaseline.sweep_thresholds(
            use_negative=False, thresholds=(0.3, 0.6, 0.9), config=config
        ),
        "SchemaCC": SchemaCCBaseline.sweep_thresholds(
            use_negative=True, thresholds=(0.3, 0.6, 0.9), config=config
        ),
        "WiseIntegrator": WiseIntegratorBaseline(config=config),
        "Freebase": FreebaseBaseline(),
        "YAGO": YagoBaseline(),
    }


# ---------------------------------------------------------------------------------------
# E1 / E6 — Figures 7 and 14: method comparison, per-case comparison
# ---------------------------------------------------------------------------------------
@dataclass
class MethodComparisonResult:
    """Results of the Figure 7 / Figure 14 experiments."""

    evaluations: dict[str, MethodEvaluation]
    benchmark: list[BenchmarkCase]
    corpus_stats: dict[str, float] = field(default_factory=dict)

    def summary_rows(self) -> list[tuple[str, float, float, float]]:
        """(method, avg F, avg precision, avg recall) rows, best F first."""
        rows = [
            (
                name,
                evaluation.avg_f_score,
                evaluation.avg_precision,
                evaluation.avg_recall,
            )
            for name, evaluation in self.evaluations.items()
        ]
        return sorted(rows, key=lambda row: row[1], reverse=True)

    def per_case_rows(self, sort_by: str = "Synthesis") -> list[tuple[str, dict[str, float]]]:
        """(case, {method: f_score}) rows sorted by the reference method's score."""
        cases = list(self.benchmark)
        reference = self.evaluations.get(sort_by)
        if reference is not None:
            cases.sort(
                key=lambda case: reference.case_scores[case.name].f_score, reverse=True
            )
        rows = []
        for case in cases:
            rows.append(
                (
                    case.name,
                    {
                        name: evaluation.case_scores[case.name].f_score
                        for name, evaluation in self.evaluations.items()
                    },
                )
            )
        return rows

    def runtimes(self) -> dict[str, float]:
        """Figure-8-style runtime (seconds) per method."""
        return {
            name: evaluation.runtime_seconds
            for name, evaluation in self.evaluations.items()
        }


def run_method_comparison(
    corpus: TableCorpus | None = None,
    benchmark: list[BenchmarkCase] | None = None,
    config: SynthesisConfig | None = None,
    methods: dict[str, BaselineMethod | list[BaselineMethod]] | None = None,
    scale: ExperimentScale | None = None,
) -> MethodComparisonResult:
    """Reproduce Figure 7 (and the data behind Figures 8 and 14)."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    benchmark = benchmark if benchmark is not None else build_web_benchmark(corpus)
    methods = methods if methods is not None else default_methods(config)
    runner = EvaluationRunner(corpus, benchmark, config)
    evaluations = runner.evaluate_all(methods)
    return MethodComparisonResult(
        evaluations=evaluations,
        benchmark=benchmark,
        corpus_stats=corpus.stats(),
    )


def run_per_case_comparison(
    result: MethodComparisonResult | None = None, **kwargs
) -> list[tuple[str, dict[str, float]]]:
    """Figure 14: per-case F-scores sorted by the Synthesis score."""
    result = result or run_method_comparison(**kwargs)
    return result.per_case_rows()


def run_runtime_comparison(
    result: MethodComparisonResult | None = None, **kwargs
) -> dict[str, float]:
    """Figure 8: runtime per method (seconds on the local substrate)."""
    result = result or run_method_comparison(**kwargs)
    return result.runtimes()


# ---------------------------------------------------------------------------------------
# E3 — Figure 9: scalability
# ---------------------------------------------------------------------------------------
@dataclass
class ScalabilityResult:
    """Runtime of the full pipeline at increasing input fractions."""

    fractions: list[float]
    runtimes: list[float]
    table_counts: list[int]
    candidate_counts: list[int]

    def rows(self) -> list[tuple[float, int, int, float]]:
        """(fraction, tables, candidates, runtime seconds) rows."""
        return list(zip(self.fractions, self.table_counts, self.candidate_counts, self.runtimes))


def run_scalability(
    corpus: TableCorpus | None = None,
    fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
    config: SynthesisConfig | None = None,
    scale: ExperimentScale | None = None,
) -> ScalabilityResult:
    """Reproduce Figure 9: pipeline runtime vs fraction of input tables."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    result = ScalabilityResult(fractions=[], runtimes=[], table_counts=[], candidate_counts=[])
    for fraction in fractions:
        sample = corpus.sample(fraction, seed=17) if fraction < 1.0 else corpus
        pipeline = SynthesisPipeline(config)
        outcome = pipeline.run(sample)
        result.fractions.append(fraction)
        result.runtimes.append(sum(outcome.timings.values()))
        result.table_counts.append(len(sample))
        result.candidate_counts.append(len(outcome.candidates))
    return result


# ---------------------------------------------------------------------------------------
# E4 / E5 — Figures 10 and 11: enterprise corpus
# ---------------------------------------------------------------------------------------
def run_enterprise_comparison(
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    scale: ExperimentScale | None = None,
) -> MethodComparisonResult:
    """Reproduce Figure 10: Synthesis vs EntTable on the Enterprise corpus."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_enterprise_corpus(scale)
    benchmark = build_enterprise_benchmark(corpus)
    methods: dict[str, BaselineMethod | list[BaselineMethod]] = {
        "Synthesis": SynthesisMethod(config),
        "EntTable": EntTableBaseline(config),
    }
    runner = EvaluationRunner(corpus, benchmark, config)
    evaluations = runner.evaluate_all(methods)
    return MethodComparisonResult(
        evaluations=evaluations, benchmark=benchmark, corpus_stats=corpus.stats()
    )


def collect_enterprise_examples(
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    top_k: int = 8,
    scale: ExperimentScale | None = None,
) -> list[dict[str, object]]:
    """Reproduce Figure 11: example enterprise mappings with sample instances."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_enterprise_corpus(scale)
    pipeline = SynthesisPipeline(config)
    outcome = pipeline.run(corpus)
    examples = []
    for mapping in outcome.top_mappings(top_k):
        examples.append(
            {
                "mapping_id": mapping.mapping_id,
                "column_names": mapping.column_names,
                "popularity": mapping.popularity,
                "size": len(mapping),
                "sample_instances": [pair.as_tuple() for pair in list(mapping.pairs)[:3]],
            }
        )
    return examples


# ---------------------------------------------------------------------------------------
# E7 — Figure 15 / §5.6: conflict resolution
# ---------------------------------------------------------------------------------------
@dataclass
class ConflictResolutionStudy:
    """Precision/recall/F with and without conflict resolution, plus majority vote."""

    with_resolution: MethodEvaluation
    without_resolution: MethodEvaluation
    majority_voting: MethodEvaluation
    improved_cases: list[str] = field(default_factory=list)

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate numbers per variant."""
        return {
            "with_resolution": self.with_resolution.summary(),
            "without_resolution": self.without_resolution.summary(),
            "majority_voting": self.majority_voting.summary(),
        }


def run_conflict_resolution_study(
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    scale: ExperimentScale | None = None,
) -> ConflictResolutionStudy:
    """Reproduce Figure 15 and §5.6: the effect of conflict resolution."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    benchmark = build_web_benchmark(corpus)
    runner = EvaluationRunner(corpus, benchmark, config)

    with_resolution = runner.evaluate_method(SynthesisMethod(config))
    without_resolution = runner.evaluate_method(
        SynthesisMethod(config.with_overrides(resolve_conflicts=False))
    )
    majority = runner.evaluate_method(
        SynthesisMethod(config.with_overrides(conflict_strategy="majority"))
    )
    with_resolution.method_name = "Synthesis"
    without_resolution.method_name = "Synthesis w/o resolution"
    majority.method_name = "Synthesis (majority voting)"

    improved = [
        case.name
        for case in benchmark
        if with_resolution.case_scores[case.name].f_score
        > without_resolution.case_scores[case.name].f_score
    ]
    return ConflictResolutionStudy(
        with_resolution=with_resolution,
        without_resolution=without_resolution,
        majority_voting=majority,
        improved_cases=improved,
    )


# ---------------------------------------------------------------------------------------
# E8 — §5.4: sensitivity analysis
# ---------------------------------------------------------------------------------------
@dataclass
class SensitivityResult:
    """Average F-score of Synthesis under one-parameter sweeps."""

    parameter: str
    values: list[float]
    avg_f_scores: list[float]
    num_mappings: list[int]

    def rows(self) -> list[tuple[float, float, int]]:
        """(parameter value, avg F-score, number of synthesized mappings) rows."""
        return list(zip(self.values, self.avg_f_scores, self.num_mappings))

    def best_value(self) -> float:
        """The parameter value with the highest average F-score."""
        best_index = max(range(len(self.values)), key=lambda i: self.avg_f_scores[i])
        return self.values[best_index]


def run_sensitivity(
    parameter: str,
    values: tuple[float, ...],
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    scale: ExperimentScale | None = None,
) -> SensitivityResult:
    """Reproduce the §5.4 sensitivity sweeps for θ, τ, θ_overlap, or θ_edge.

    ``parameter`` is the :class:`SynthesisConfig` field name, e.g. ``fd_theta``,
    ``conflict_threshold``, ``overlap_threshold`` or ``edge_threshold``.
    """
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    benchmark = build_web_benchmark(corpus)
    runner = EvaluationRunner(corpus, benchmark, config)
    result = SensitivityResult(parameter=parameter, values=[], avg_f_scores=[], num_mappings=[])
    for value in values:
        override = {parameter: int(value) if parameter == "overlap_threshold" else value}
        variant = config.with_overrides(**override)
        evaluation = runner.evaluate_method(SynthesisMethod(variant))
        result.values.append(value)
        result.avg_f_scores.append(evaluation.avg_f_score)
        result.num_mappings.append(evaluation.num_relationships)
    return result


# ---------------------------------------------------------------------------------------
# E9 — §3.2: candidate filtering statistics
# ---------------------------------------------------------------------------------------
def run_extraction_stats(
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    scale: ExperimentScale | None = None,
) -> dict[str, float]:
    """Reproduce the §3.2 claim that ~78% of raw column pairs are filtered out."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    extractor = CandidateExtractor(config)
    _, stats = extractor.extract(corpus)
    return stats.as_dict()


# ---------------------------------------------------------------------------------------
# E10 — Appendix I: table expansion
# ---------------------------------------------------------------------------------------
@dataclass
class ExpansionStudy:
    """F-scores before and after table expansion per benchmark case."""

    before: dict[str, MappingScore]
    after: dict[str, MappingScore]

    def improved_cases(self, min_gain: float = 0.01) -> list[str]:
        """Cases whose F-score improved by at least ``min_gain``."""
        return [
            case
            for case in self.before
            if self.after[case].f_score - self.before[case].f_score >= min_gain
        ]

    def rows(self) -> list[tuple[str, float, float]]:
        """(case, F before, F after) rows."""
        return [
            (case, self.before[case].f_score, self.after[case].f_score)
            for case in self.before
        ]


def _trusted_sources_from_seeds(case_names: list[str]) -> list[BinaryTable]:
    """Build 'data.gov-style' trusted tables: complete canonical pair lists."""
    sources = []
    for name in case_names:
        relation = get_seed_relation(name)
        sources.append(
            BinaryTable.from_rows(
                table_id=f"trusted-{name}",
                rows=list(relation.pairs),
                left_name=relation.left_attr,
                right_name=relation.right_attr,
                source_table_id=f"trusted-{name}",
                domain="data.gov",
            )
        )
    return sources


def run_expansion_study(
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    trusted_cases: tuple[str, ...] = ("airport_iata", "airport_icao", "country_iso3"),
    scale: ExperimentScale | None = None,
) -> ExpansionStudy:
    """Reproduce Appendix I: expansion helps large relations most."""
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    benchmark = build_web_benchmark(corpus)
    runner = EvaluationRunner(corpus, benchmark, config)

    base_method = SynthesisMethod(config)
    base_mappings = base_method.synthesize(corpus, candidates=runner.candidates)
    before = {
        case.name: best_mapping_score(base_mappings, case.truth) for case in benchmark
    }

    expander = TableExpander(_trusted_sources_from_seeds(list(trusted_cases)), config)
    expanded, _ = expander.expand_all(base_mappings)
    after = {
        case.name: best_mapping_score(expanded, case.truth) for case in benchmark
    }
    return ExpansionStudy(before=before, after=after)


# ---------------------------------------------------------------------------------------
# E11 — Figures 12/13 and §4.3: qualitative examples and popularity statistics
# ---------------------------------------------------------------------------------------
def collect_web_examples(
    corpus: TableCorpus | None = None,
    config: SynthesisConfig | None = None,
    top_k: int = 20,
    scale: ExperimentScale | None = None,
) -> list[dict[str, object]]:
    """Top synthesized Web mappings by popularity, with meaningfulness labels.

    The labels use the generator's provenance metadata: mappings dominated by
    spurious/formatting source tables are flagged as "meaningless", mirroring the
    manual classification in Appendix J.
    """
    config = config or experiment_config()
    corpus = corpus if corpus is not None else make_web_corpus(scale)
    pipeline = SynthesisPipeline(config)
    outcome = pipeline.run(corpus)

    # Map candidate table id -> seed relation (provenance; analysis only).
    provenance = {}
    for table in corpus:
        provenance[table.table_id] = table.metadata.get("seed_relation", "")

    examples = []
    for mapping in popularity_rank(outcome.curated or outcome.mappings)[:top_k]:
        seed_names = [
            provenance.get(table_id.split("#")[0], "") for table_id in mapping.source_tables
        ]
        spurious = sum(1 for name in seed_names if name.startswith("__"))
        label = "meaningless" if spurious > len(seed_names) / 2 else "meaningful"
        examples.append(
            {
                "mapping_id": mapping.mapping_id,
                "column_names": mapping.column_names,
                "popularity": mapping.popularity,
                "num_source_tables": mapping.num_source_tables,
                "size": len(mapping),
                "label": label,
                "sample_instances": [pair.as_tuple() for pair in list(mapping.pairs)[:3]],
            }
        )
    return examples
