"""Evaluation: metrics, benchmark construction, method runner, and experiments."""

from repro.evaluation.metrics import MappingScore, best_mapping_score, score_mapping
from repro.evaluation.benchmark import (
    BenchmarkCase,
    build_enterprise_benchmark,
    build_web_benchmark,
)
from repro.evaluation.runner import EvaluationRunner, MethodEvaluation
from repro.evaluation.reporting import format_comparison_table, format_per_case_table

__all__ = [
    "MappingScore",
    "score_mapping",
    "best_mapping_score",
    "BenchmarkCase",
    "build_web_benchmark",
    "build_enterprise_benchmark",
    "EvaluationRunner",
    "MethodEvaluation",
    "format_comparison_table",
    "format_per_case_table",
]
