"""Plain-text reporting of evaluation results (the rows/series the paper plots)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.evaluation.runner import MethodEvaluation

__all__ = ["format_comparison_table", "format_per_case_table", "format_simple_table"]


def format_simple_table(
    header: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a list of rows as a fixed-width text table."""
    columns = [[str(value) for value in column] for column in zip(header, *rows)]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(value).ljust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_comparison_table(
    results: Mapping[str, MethodEvaluation], title: str = "Method comparison"
) -> str:
    """Figure-7-style table: avg F-score / precision / recall per method."""
    rows = []
    ordered = sorted(results.items(), key=lambda item: item[1].avg_f_score, reverse=True)
    for name, evaluation in ordered:
        rows.append(
            [
                name,
                f"{evaluation.avg_f_score:.3f}",
                f"{evaluation.avg_precision:.3f}",
                f"{evaluation.avg_recall:.3f}",
                f"{evaluation.runtime_seconds:.2f}s",
            ]
        )
    return format_simple_table(
        ["method", "avg_fscore", "avg_precision", "avg_recall", "runtime"], rows, title
    )


def format_per_case_table(
    results: Mapping[str, MethodEvaluation],
    sort_by: str | None = None,
    title: str = "Per-case F-scores",
) -> str:
    """Figure-14-style table: per-case F-score for every method.

    Cases are sorted by the F-score of ``sort_by`` (descending), matching how the
    paper sorts cases by the Synthesis score.
    """
    method_names = list(results)
    if not method_names:
        return title
    case_names = list(next(iter(results.values())).case_scores)
    if sort_by and sort_by in results:
        case_names.sort(
            key=lambda case: results[sort_by].case_scores[case].f_score, reverse=True
        )
    rows = []
    for case in case_names:
        row = [case]
        for name in method_names:
            score = results[name].case_scores.get(case)
            row.append(f"{score.f_score:.2f}" if score else "-")
        rows.append(row)
    return format_simple_table(["case", *method_names], rows, title)
